// Package errpropagation flags dropped error returns.
//
// A call whose result set includes an error, used as a bare statement
// (including `defer` and `go`), silently discards the error. In
// simulation code a swallowed error usually means a silently wrong
// result, which is worse than a crash. Errors must be handled, returned,
// or explicitly discarded with `_ =` (visible in review) or a
// `//lint:allow errpropagation:dropped <reason>` directive.
//
// Scope: packages with an "internal" or "cmd" path segment, excluding
// _test.go files.
//
// Exemptions, to keep the signal high:
//
//   - fmt.Print/Printf/Println/Fprint/Fprintf/Fprintln: terminal/report
//     output where failure is untreatable;
//   - methods of strings.Builder and bytes.Buffer, which are documented
//     never to return a non-nil error;
//   - Write/WriteString/WriteByte/WriteRune on bufio.Writer, whose write
//     errors are sticky and surface from Flush (Flush itself is checked);
//   - niladic Close and Flush on resource types (per resourcelifecycle's
//     Detector): the resourcelifecycle analyzer owns those as its
//     dropped-error category, with a `_ =` suggested fix — one finding
//     per site, not two. Close/Flush on non-resource types (such as
//     bufio.Writer) stays with this analyzer.
//
// Goroutine bodies get one extra rule: assigning an error to a variable
// captured from the spawning function (`go func() { err = f() }()`) drops
// it just as surely as a bare call — the spawner cannot observe the write
// without synchronization, and by the time it could, a second goroutine
// may have overwritten it. Deliver goroutine errors over a channel or
// into a distinct index of a caller-owned slice instead.
package errpropagation

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"github.com/rolo-storage/rolo/internal/analysis"
	"github.com/rolo-storage/rolo/internal/analysis/resourcelifecycle"
)

// Analyzer is the errpropagation check.
var Analyzer = &analysis.Analyzer{
	Name: "errpropagation",
	Doc:  "flag calls that silently drop error returns",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	path := pass.Pkg.Path()
	if !analysis.HasPathSegment(path, "internal") && !analysis.HasPathSegment(path, "cmd") {
		return nil
	}
	det := resourcelifecycle.NewDetector(pass)
	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			var call *ast.CallExpr
			var how string
			switch n := n.(type) {
			case *ast.ExprStmt:
				call, _ = n.X.(*ast.CallExpr)
				how = "call"
			case *ast.DeferStmt:
				call = n.Call
				how = "deferred call"
			case *ast.GoStmt:
				call = n.Call
				how = "go call"
				if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
					checkGoroutineErrs(pass, lit)
				}
			default:
				return true
			}
			if call == nil || !returnsError(pass.TypesInfo, call) || exempt(pass.TypesInfo, call, det) {
				return true
			}
			pass.Reportf(call.Pos(), "dropped", "%s to %s drops its error; handle it, return it, or discard explicitly with `_ =`",
				how, calleeName(pass.TypesInfo, call))
			return true
		})
	}
	return nil
}

// checkGoroutineErrs flags assignments, inside a goroutine literal, to
// error-typed variables declared outside it. Such a write reaches the
// spawner only through separate synchronization and is overwritten by
// whichever goroutine assigns last — the concurrent flavour of a dropped
// error.
func checkGoroutineErrs(pass *analysis.Pass, lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok == token.DEFINE {
			return true
		}
		for _, lhs := range as.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok {
				continue
			}
			v, ok := pass.TypesInfo.Uses[id].(*types.Var)
			if !ok || v.IsField() || !isErrorType(v.Type()) {
				continue
			}
			if v.Pos() >= lit.Pos() && v.Pos() <= lit.End() {
				continue // the goroutine's own local
			}
			pass.Reportf(id.Pos(), "captured-err",
				"goroutine assigns error to captured variable %s, invisible to the spawner; deliver it over a channel or an indexed slice", id.Name)
		}
		return true
	})
}

// returnsError reports whether the call's results include an error.
func returnsError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(t)
	}
}

var errorType = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool { return types.Identical(t, errorType) }

// printfFuncs is the fmt output family exempted from the check.
var printfFuncs = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

// exempt recognizes calls whose dropped error is either impossible,
// surfaced elsewhere, or owned by a more specific analyzer.
func exempt(info *types.Info, call *ast.CallExpr, det *resourcelifecycle.Detector) bool {
	fn := analysis.CalleeFunc(info, call)
	if fn == nil {
		return false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && printfFuncs[fn.Name()]
	}
	recv := sig.Recv().Type()
	switch {
	case analysis.IsNamed(recv, "strings", "Builder"),
		analysis.IsNamed(recv, "bytes", "Buffer"):
		return true
	case analysis.IsNamed(recv, "bufio", "Writer"):
		return strings.HasPrefix(fn.Name(), "Write")
	}
	// Dropped Close/Flush errors on resource values are
	// resourcelifecycle's dropped-error category.
	if (fn.Name() == "Close" || fn.Name() == "Flush") && sig.Params().Len() == 0 {
		return det.IsResource(recv)
	}
	return false
}

func calleeName(info *types.Info, call *ast.CallExpr) string {
	if fn := analysis.CalleeFunc(info, call); fn != nil {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			short := func(p *types.Package) string { return p.Name() }
			return "(" + types.TypeString(sig.Recv().Type(), short) + ")." + fn.Name()
		}
		if fn.Pkg() != nil {
			return fn.Pkg().Name() + "." + fn.Name()
		}
		return fn.Name()
	}
	return types.ExprString(call.Fun)
}
