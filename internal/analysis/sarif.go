package analysis

import (
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"strings"
)

// This file renders findings as SARIF 2.1.0, the static-analysis results
// interchange format GitHub code scanning ingests — CI uploads the report
// as a workflow artifact so findings can annotate pull requests. Only the
// subset of the schema GitHub consumes is emitted: one run, one tool
// driver with a rule per analyzer, and one result per finding with a
// physical location relative to the source root.

// SARIF document structs, mirroring the 2.1.0 schema shape.
type (
	sarifLog struct {
		Version string     `json:"version"`
		Schema  string     `json:"$schema"`
		Runs    []sarifRun `json:"runs"`
	}
	sarifRun struct {
		Tool    sarifTool     `json:"tool"`
		Results []sarifResult `json:"results"`
	}
	sarifTool struct {
		Driver sarifDriver `json:"driver"`
	}
	sarifDriver struct {
		Name           string      `json:"name"`
		InformationURI string      `json:"informationUri"`
		Rules          []sarifRule `json:"rules"`
	}
	sarifRule struct {
		ID               string       `json:"id"`
		ShortDescription sarifMessage `json:"shortDescription"`
	}
	sarifMessage struct {
		Text string `json:"text"`
	}
	sarifResult struct {
		RuleID    string          `json:"ruleId"`
		RuleIndex int             `json:"ruleIndex"`
		Level     string          `json:"level"`
		Message   sarifMessage    `json:"message"`
		Locations []sarifLocation `json:"locations"`
	}
	sarifLocation struct {
		PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
	}
	sarifPhysicalLocation struct {
		ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
		Region           sarifRegion           `json:"region"`
	}
	sarifArtifactLocation struct {
		URI       string `json:"uri"`
		URIBaseID string `json:"uriBaseId"`
	}
	sarifRegion struct {
		StartLine   int `json:"startLine"`
		StartColumn int `json:"startColumn"`
	}
)

const sarifSchema = "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"

// WriteSARIF renders the findings of one run as a SARIF 2.1.0 document.
// analyzers defines the rule table (every analyzer that ran, findings or
// not, so a clean run still documents what was checked); srcRoot anchors
// the relative artifact URIs (findings outside it keep absolute paths).
func WriteSARIF(w io.Writer, analyzers []*Analyzer, findings []Finding, srcRoot string) error {
	ruleIndex := make(map[string]int, len(analyzers))
	rules := make([]sarifRule, 0, len(analyzers))
	for _, a := range analyzers {
		ruleIndex[a.Name] = len(rules)
		rules = append(rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifMessage{Text: firstDocLine(a.Doc)},
		})
	}
	// Findings from analyzers outside the table (possible when a caller
	// filters the suite) still need a rule entry.
	for _, f := range findings {
		if _, ok := ruleIndex[f.Analyzer]; !ok {
			ruleIndex[f.Analyzer] = len(rules)
			rules = append(rules, sarifRule{ID: f.Analyzer, ShortDescription: sarifMessage{Text: f.Analyzer}})
		}
	}

	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		msg := f.Message
		if f.Category != "" {
			msg = fmt.Sprintf("%s [%s]", f.Message, f.Rule())
		}
		results = append(results, sarifResult{
			RuleID:    f.Analyzer,
			RuleIndex: ruleIndex[f.Analyzer],
			Level:     "warning",
			Message:   sarifMessage{Text: msg},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{
						URI:       sarifURI(f.Pos.Filename, srcRoot),
						URIBaseID: "%SRCROOT%",
					},
					Region: sarifRegion{
						StartLine:   max(f.Pos.Line, 1),
						StartColumn: max(f.Pos.Column, 1),
					},
				},
			}},
		})
	}

	doc := sarifLog{
		Version: "2.1.0",
		Schema:  sarifSchema,
		Runs: []sarifRun{{
			Tool: sarifTool{Driver: sarifDriver{
				Name:           "rololint",
				InformationURI: "https://github.com/rolo-storage/rolo",
				Rules:          rules,
			}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// sarifURI renders a finding path relative to the source root with
// forward slashes, as GitHub's %SRCROOT% convention expects.
func sarifURI(filename, srcRoot string) string {
	if srcRoot != "" {
		if rel, err := filepath.Rel(srcRoot, filename); err == nil && !strings.HasPrefix(rel, "..") {
			return filepath.ToSlash(rel)
		}
	}
	return filepath.ToSlash(filename)
}

// SortAnalyzers returns the analyzers sorted by name, the order the rule
// table uses so SARIF output is stable across suite reorderings.
func SortAnalyzers(analyzers []*Analyzer) []*Analyzer {
	out := append([]*Analyzer(nil), analyzers...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func firstDocLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
