package analysis

import (
	"encoding/json"
	"fmt"
	"go/types"
	"sort"
)

// This file is the fact mechanism: the cross-package half of the
// interprocedural layer. An analyzer attaches a JSON-serializable summary
// to a function (or any package-level object) with ExportFact; when a
// downstream package is analyzed, the drivers hand the accumulated facts
// of its dependency closure to ImportFact. Facts are keyed by a stable
// textual object key rather than by types.Object identity, because the
// importing package sees the exporter's objects through export data — a
// different *types.Func for the same function.
//
// Facts live in a namespace, conventionally the exporting analyzer's
// name; a namespace distinct from the analyzer lets sibling analyzers
// share one summary family (guardedby and lockcontract both read the
// "lockcontract" namespace, and both export it, so either works alone).
//
// Transport is driver-specific: the unitchecker serializes facts into the
// vetx file the go command caches per package; the standalone and
// analysistest drivers keep them in memory, analyzing dependencies first.

// A FactKey identifies one object's fact in one namespace.
type FactKey struct {
	NS     string // namespace, conventionally the exporting analyzer
	Object string // stable object key, see ObjectKey
}

// Facts maps keys to JSON-encoded fact values.
type Facts map[FactKey]json.RawMessage

// ObjectKey renders a stable, export-data-independent key for a
// package-level object or method: "path.Name" for package-level objects,
// "(path.Recv).Name" for methods (pointer receivers are stripped — a
// method set has one owner type). It returns "" for objects facts cannot
// name across packages (locals, interface methods without a concrete
// receiver type, builtins).
func ObjectKey(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	if fn, ok := obj.(*types.Func); ok {
		sig, _ := fn.Type().(*types.Signature)
		if sig != nil && sig.Recv() != nil {
			t := sig.Recv().Type()
			if ptr, ok := t.(*types.Pointer); ok {
				t = ptr.Elem()
			}
			named, ok := t.(*types.Named)
			if !ok {
				return "" // interface or unnamed receiver
			}
			return fmt.Sprintf("(%s.%s).%s", named.Obj().Pkg().Path(), named.Obj().Name(), fn.Name())
		}
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// ExportFact records a fact about obj in namespace ns for downstream
// packages. The value must marshal to JSON; objects without a stable key
// are silently skipped (they cannot be referenced across packages).
func (p *Pass) ExportFact(ns string, obj types.Object, v any) {
	key := ObjectKey(obj)
	if key == "" || p.exported == nil {
		return
	}
	data, err := json.Marshal(v)
	if err != nil {
		return
	}
	p.exported[FactKey{ns, key}] = data
}

// ImportFact decodes the fact recorded for obj in namespace ns by a
// dependency package into v, reporting whether one was found. Facts the
// current package exported during this run are visible too, so analyzers
// that run after the exporter in the same pass can read them.
func (p *Pass) ImportFact(ns string, obj types.Object, v any) bool {
	key := ObjectKey(obj)
	if key == "" {
		return false
	}
	data, ok := p.imported[FactKey{ns, key}]
	if !ok {
		data, ok = p.exported[FactKey{ns, key}]
	}
	if !ok {
		return false
	}
	return json.Unmarshal(data, v) == nil
}

// factRecord is the serialized form of one fact, used by the vetx
// transport.
type factRecord struct {
	NS     string          `json:"ns"`
	Object string          `json:"obj"`
	Value  json.RawMessage `json:"v"`
}

// EncodeFacts serializes a fact set deterministically (sorted by key), so
// vetx files are byte-stable for the go command's content-based cache.
func EncodeFacts(f Facts) ([]byte, error) {
	records := make([]factRecord, 0, len(f))
	for k, v := range f {
		records = append(records, factRecord{NS: k.NS, Object: k.Object, Value: v})
	}
	sort.Slice(records, func(i, j int) bool {
		if records[i].NS != records[j].NS {
			return records[i].NS < records[j].NS
		}
		return records[i].Object < records[j].Object
	})
	return json.Marshal(records)
}

// DecodeFacts parses a serialized fact set into dst (allocating it when
// nil). Empty input is a valid empty set — the vetx files of packages
// with no facts (and of standard-library packages, which are skipped
// wholesale) are empty.
func DecodeFacts(dst Facts, data []byte) (Facts, error) {
	if dst == nil {
		dst = make(Facts)
	}
	if len(data) == 0 {
		return dst, nil
	}
	var records []factRecord
	if err := json.Unmarshal(data, &records); err != nil {
		return dst, fmt.Errorf("decoding facts: %w", err)
	}
	for _, r := range records {
		dst[FactKey{r.NS, r.Object}] = r.Value
	}
	return dst, nil
}
