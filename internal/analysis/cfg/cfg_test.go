package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"sort"
	"testing"
)

// universe for the toy analysis: the identifiers A, B, C as values 0..2.
var universe = map[string]int{"A": 0, "B": 1, "C": 2}

// buildFunc parses src as a file, returns the CFG of the function named
// fn, plus a map from probe comments to nothing — probes are calls
// probe(n) whose entry sets the test inspects.
func buildFunc(t *testing.T, body string) *Graph {
	t.Helper()
	src := "package p\nfunc f(x int) {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "t.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fd := file.Decls[0].(*ast.FuncDecl)
	return Build(fd.Body)
}

// valueOf maps an expression to a universe index.
func valueOf(e ast.Expr) (int, bool) {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return 0, false
	}
	i, ok := universe[id.Name]
	return i, ok
}

// isTracked reports whether e is the tracked variable x.
func isTracked(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "x"
}

// transfer interprets `x = <value>` assignments; any other assignment to
// x clobbers to the full set.
func transfer(s ast.Stmt, in Set) Set {
	as, ok := s.(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 || !isTracked(as.Lhs[0]) {
		return in
	}
	if i, ok := valueOf(as.Rhs[0]); ok {
		return Only(i)
	}
	return Full(len(universe))
}

func refine(c *Cond, in Set) Set {
	if !isTracked(c.Expr) {
		return in
	}
	var vals Set
	for _, v := range c.Vals {
		i, ok := valueOf(v)
		if !ok {
			return in
		}
		vals = vals.With(i)
	}
	if c.Negated {
		return in &^ vals
	}
	return in.Intersect(vals)
}

// probeSets runs the analysis and returns, for every `probe()` call
// statement, the set in force at that point.
func probeSets(t *testing.T, g *Graph) []Set {
	t.Helper()
	in := g.Solve(Full(len(universe)), transfer, refine)
	type probe struct {
		pos token.Pos
		set Set
	}
	var ps []probe
	for _, blk := range g.Blocks {
		cur := in[blk]
		for _, s := range blk.Stmts {
			if es, ok := s.(*ast.ExprStmt); ok {
				if call, ok := es.X.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "probe" {
						ps = append(ps, probe{call.Pos(), cur})
					}
				}
			}
			cur = transfer(s, cur)
		}
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].pos < ps[j].pos })
	out := make([]Set, len(ps))
	for i, p := range ps {
		out[i] = p.set
	}
	return out
}

func want(t *testing.T, got []Set, want ...Set) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("probes = %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("probe %d: set %b, want %b", i, got[i], want[i])
		}
	}
}

func TestStraightLine(t *testing.T) {
	g := buildFunc(t, `
		probe()
		x = A
		probe()
	`)
	if g.Unanalyzable {
		t.Fatalf("unanalyzable: %s", g.Reason)
	}
	want(t, probeSets(t, g), Full(3), Only(0))
}

func TestIfRefinement(t *testing.T) {
	g := buildFunc(t, `
		if x == A {
			probe()
		} else {
			probe()
		}
		probe()
	`)
	want(t, probeSets(t, g), Only(0), Full(3).Without(0), Full(3))
}

func TestIfNotEqual(t *testing.T) {
	g := buildFunc(t, `
		if x != B {
			probe()
			return
		}
		probe()
	`)
	want(t, probeSets(t, g), Full(3).Without(1), Only(1))
}

func TestEarlyReturnNarrows(t *testing.T) {
	// The join after `if x != A { return }` only receives the A path.
	g := buildFunc(t, `
		if x != A {
			return
		}
		probe()
	`)
	want(t, probeSets(t, g), Only(0))
}

func TestSwitchTag(t *testing.T) {
	g := buildFunc(t, `
		switch x {
		case A, B:
			probe()
		case C:
			probe()
		default:
			probe()
		}
		probe()
	`)
	want(t, probeSets(t, g), Only(0).With(1), Only(2), Set(0), Full(3))
}

func TestSwitchReturnNarrows(t *testing.T) {
	// tryDispatch's shape: a switch whose non-handled cases return, so
	// after the switch the value is narrowed to the fallen-through cases.
	g := buildFunc(t, `
		switch x {
		case B, C:
			return
		}
		probe()
	`)
	want(t, probeSets(t, g), Only(0))
}

func TestSwitchFallthrough(t *testing.T) {
	g := buildFunc(t, `
		switch x {
		case A:
			fallthrough
		case B:
			probe()
		}
	`)
	// The fallthrough path carries {A} into case B's body.
	want(t, probeSets(t, g), Only(0).With(1))
}

func TestForLoopFixpoint(t *testing.T) {
	// x narrows to A before the loop, may be reassigned to B inside;
	// the loop head must converge to {A, B}.
	g := buildFunc(t, `
		x = A
		for i := 0; i < 3; i++ {
			probe()
			x = B
		}
		probe()
	`)
	want(t, probeSets(t, g), Only(0).With(1), Only(0).With(1))
}

func TestRangeLoop(t *testing.T) {
	g := buildFunc(t, `
		x = C
		for range ys {
			x = A
		}
		probe()
	`)
	want(t, probeSets(t, g), Only(0).With(2))
}

func TestBreakAndContinue(t *testing.T) {
	g := buildFunc(t, `
		x = A
		for {
			if x == A {
				x = B
				continue
			}
			break
		}
		probe()
	`)
	// Break is only reachable with x != A; inside the loop x ∈ {A, B}.
	want(t, probeSets(t, g), Only(1))
}

func TestUnanalyzableConstructs(t *testing.T) {
	for name, body := range map[string]string{
		"goto":               "goto done\ndone:\nprobe()",
		"select":             "select {}",
		"type switch":        "switch any(x).(type) {\ncase int:\n}",
		"labeled plain stmt": "L:\nprobe()",
	} {
		t.Run(name, func(t *testing.T) {
			g := buildFunc(t, body)
			if !g.Unanalyzable {
				t.Errorf("%s: graph not marked unanalyzable", name)
			}
		})
	}
}

func TestBranchRoleEdges(t *testing.T) {
	// Every two-way branch must annotate its edges with the raw condition
	// and a true/false role, even when the condition is not a normalized
	// equality — value-flow refinement interprets `if ok` shapes itself.
	g := buildFunc(t, `
		if ok() {
			x = A
		} else {
			x = B
		}
	`)
	var roles []int8
	for _, blk := range g.Blocks {
		for _, e := range blk.Succs {
			if e.If != nil {
				roles = append(roles, e.Branch)
				if e.Cond != nil {
					t.Errorf("non-equality condition carries a normalized Cond")
				}
			}
		}
	}
	if len(roles) != 2 || roles[0] != 1 || roles[1] != -1 {
		t.Fatalf("branch roles = %v, want [1 -1]", roles)
	}
}

func TestCondEvaluationVisible(t *testing.T) {
	// The if condition itself must appear as a synthetic statement so
	// transfer functions observe calls inside it.
	g := buildFunc(t, `
		if mutate() == A {
			probe()
		}
	`)
	found := false
	for _, blk := range g.Blocks {
		for _, s := range blk.Stmts {
			es, ok := s.(*ast.ExprStmt)
			if !ok {
				continue
			}
			if bin, ok := es.X.(*ast.BinaryExpr); ok && bin.Op == token.EQL {
				found = true
			}
		}
	}
	if !found {
		t.Error("if condition not emitted into any block")
	}
}

func TestSetOps(t *testing.T) {
	s := Full(5)
	if s.Len() != 5 || !s.Has(4) || s.Has(5) {
		t.Errorf("Full(5) = %b", s)
	}
	s = s.Without(2).Without(0)
	if s.Len() != 3 || s.Has(2) || s.Has(0) {
		t.Errorf("after Without: %b", s)
	}
	var got []int
	s.Each(func(i int) { got = append(got, i) })
	if len(got) != 3 || got[0] != 1 || got[1] != 3 || got[2] != 4 {
		t.Errorf("Each: %v", got)
	}
	if !Set(0).Empty() || s.Empty() {
		t.Error("Empty misreports")
	}
	if Only(3).Union(Only(1)) != Set(0b1010) {
		t.Error("Union misreports")
	}
}
