package cfg

// Solver edge cases the interprocedural summary propagation leans on:
// panic-terminated paths, loops with no exit (whose exit blocks must stay
// unreached rather than absorb a zero-value set), and the labeled
// break/continue constructs the builder declines to model.

import (
	"testing"
)

func TestPanicTerminatesPath(t *testing.T) {
	// The then-branch panics, so only the x != A edge reaches the probe:
	// without panic termination the probe would see the full set.
	g := buildFunc(t, `
		if x == A {
			panic("A is fatal")
		}
		probe()
	`)
	if g.Unanalyzable {
		t.Fatalf("unanalyzable: %s", g.Reason)
	}
	want(t, probeSets(t, g), Full(3).Without(0))
}

func TestUnreachableAfterPanic(t *testing.T) {
	// Statements after an unconditional panic are unreachable: they land
	// in no block, so the analysis never visits them.
	g := buildFunc(t, `
		panic("gone")
		x = A
		probe()
	`)
	if g.Unanalyzable {
		t.Fatalf("unanalyzable: %s", g.Reason)
	}
	if got := probeSets(t, g); len(got) != 0 {
		t.Fatalf("probe after panic was reached: sets %v", got)
	}
}

func TestForeverLoopExitUnreached(t *testing.T) {
	// `for {}` has no exit edge. The block after the loop exists
	// structurally but must not appear in the solution — a may-analysis
	// that handed it the zero-value set would claim "no value possible",
	// which downstream code could misread as proof.
	g := buildFunc(t, `
		x = A
		for {
			probe()
			x = B
		}
		probe()
	`)
	if g.Unanalyzable {
		t.Fatalf("unanalyzable: %s", g.Reason)
	}
	in := g.Solve(Full(3), transfer, refine)
	reached := 0
	for _, blk := range g.Blocks {
		if _, ok := in[blk]; ok {
			reached++
		}
	}
	if reached == len(g.Blocks) {
		t.Fatalf("all %d blocks reached; the loop exit should be unreachable", len(g.Blocks))
	}
	// The in-loop probe sees both the initial A and the back-edge B.
	want(t, probeSets(t, g), Only(0).With(1), Set(0))
}

func TestForeverLoopWithBreakReachesExit(t *testing.T) {
	g := buildFunc(t, `
		x = A
		for {
			if x == A {
				x = B
				break
			}
			x = C
		}
		probe()
	`)
	if g.Unanalyzable {
		t.Fatalf("unanalyzable: %s", g.Reason)
	}
	// Only the break path leaves the loop, carrying x == B.
	want(t, probeSets(t, g), Only(1))
}

func TestLabeledBreakUnanalyzable(t *testing.T) {
	g := buildFunc(t, `
	L:
		for {
			for {
				break L
			}
		}
		probe()
	`)
	if !g.Unanalyzable {
		t.Fatal("labeled break should mark the graph unanalyzable")
	}
	if g.Reason == "" {
		t.Fatal("unanalyzable graph carries no reason")
	}
	// Solving an unanalyzable graph must still terminate; callers are
	// expected to check Unanalyzable and over-approximate, but the solver
	// itself stays total.
	_ = g.Solve(Full(3), transfer, refine)
}

func TestLabeledContinueUnanalyzable(t *testing.T) {
	g := buildFunc(t, `
	L:
		for {
			for {
				continue L
			}
		}
	`)
	if !g.Unanalyzable {
		t.Fatal("labeled continue should mark the graph unanalyzable")
	}
}

func TestPanicInsideBranchKeepsOtherPaths(t *testing.T) {
	// A switch where one case panics: the probe merges only the
	// surviving cases.
	g := buildFunc(t, `
		switch x {
		case A:
			panic("no A")
		case B:
			probe()
		}
		probe()
	`)
	if g.Unanalyzable {
		t.Fatalf("unanalyzable: %s", g.Reason)
	}
	// First probe: inside case B. Second: B's fallout plus the default
	// (x not in {A, B}) dispatch edge — everything but A.
	want(t, probeSets(t, g), Only(1), Full(3).Without(0))
}
