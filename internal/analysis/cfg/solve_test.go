package cfg

// Solver edge cases the interprocedural summary propagation and the SSA
// φ-placement lean on: panic-terminated paths, loops with no exit (whose
// exit blocks must stay unreached rather than absorb a zero-value set),
// labeled break/continue across nested loops, range-over-int loops, and
// fallthrough-merged switch cases.

import (
	"testing"
)

func TestPanicTerminatesPath(t *testing.T) {
	// The then-branch panics, so only the x != A edge reaches the probe:
	// without panic termination the probe would see the full set.
	g := buildFunc(t, `
		if x == A {
			panic("A is fatal")
		}
		probe()
	`)
	if g.Unanalyzable {
		t.Fatalf("unanalyzable: %s", g.Reason)
	}
	want(t, probeSets(t, g), Full(3).Without(0))
}

func TestUnreachableAfterPanic(t *testing.T) {
	// Statements after an unconditional panic are unreachable: they land
	// in no block, so the analysis never visits them.
	g := buildFunc(t, `
		panic("gone")
		x = A
		probe()
	`)
	if g.Unanalyzable {
		t.Fatalf("unanalyzable: %s", g.Reason)
	}
	if got := probeSets(t, g); len(got) != 0 {
		t.Fatalf("probe after panic was reached: sets %v", got)
	}
}

func TestForeverLoopExitUnreached(t *testing.T) {
	// `for {}` has no exit edge. The block after the loop exists
	// structurally but must not appear in the solution — a may-analysis
	// that handed it the zero-value set would claim "no value possible",
	// which downstream code could misread as proof.
	g := buildFunc(t, `
		x = A
		for {
			probe()
			x = B
		}
		probe()
	`)
	if g.Unanalyzable {
		t.Fatalf("unanalyzable: %s", g.Reason)
	}
	in := g.Solve(Full(3), transfer, refine)
	reached := 0
	for _, blk := range g.Blocks {
		if _, ok := in[blk]; ok {
			reached++
		}
	}
	if reached == len(g.Blocks) {
		t.Fatalf("all %d blocks reached; the loop exit should be unreachable", len(g.Blocks))
	}
	// The in-loop probe sees both the initial A and the back-edge B.
	want(t, probeSets(t, g), Only(0).With(1), Set(0))
}

func TestForeverLoopWithBreakReachesExit(t *testing.T) {
	g := buildFunc(t, `
		x = A
		for {
			if x == A {
				x = B
				break
			}
			x = C
		}
		probe()
	`)
	if g.Unanalyzable {
		t.Fatalf("unanalyzable: %s", g.Reason)
	}
	// Only the break path leaves the loop, carrying x == B.
	want(t, probeSets(t, g), Only(1))
}

func TestLabeledBreakCrossesNestedLoops(t *testing.T) {
	// `break L` from the inner loop exits the outer loop directly: the
	// probe must see only the state at the break, never the inner loop's
	// other assignments. SSA φ-placement relies on this edge landing on
	// the outer exit block.
	g := buildFunc(t, `
		x = A
	L:
		for {
			for {
				x = B
				break L
			}
		}
		probe()
	`)
	if g.Unanalyzable {
		t.Fatalf("unanalyzable: %s", g.Reason)
	}
	want(t, probeSets(t, g), Only(1))
}

func TestLabeledContinueCrossesNestedLoops(t *testing.T) {
	// `continue L` restarts the outer loop from inside the inner one; the
	// outer head therefore joins the entry state with the continue state,
	// and the only way out is the labeled break with x == B.
	g := buildFunc(t, `
		x = A
	L:
		for {
			for {
				if x == A {
					x = B
					continue L
				}
				break L
			}
		}
		probe()
	`)
	if g.Unanalyzable {
		t.Fatalf("unanalyzable: %s", g.Reason)
	}
	want(t, probeSets(t, g), Only(1))
}

func TestLabeledSwitchBreakInLoop(t *testing.T) {
	// The lockdep-style scan idiom: a labeled break on the *switch* label
	// leaves the switch only; the loop keeps spinning until the loop-level
	// labeled break fires. Here `break L` names the loop, so the case-A
	// edge is the only loop exit.
	g := buildFunc(t, `
		x = B
	L:
		for {
			switch x {
			case A:
				break L
			}
			x = A
		}
		probe()
	`)
	if g.Unanalyzable {
		t.Fatalf("unanalyzable: %s", g.Reason)
	}
	want(t, probeSets(t, g), Only(0))
}

func TestRangeOverInt(t *testing.T) {
	// go1.22 range-over-int builds the same head/body/exit shape as any
	// range loop: zero iterations are possible, so the exit joins the
	// pre-loop state with the body's.
	g := buildFunc(t, `
		x = C
		for range 3 {
			x = A
		}
		probe()
	`)
	if g.Unanalyzable {
		t.Fatalf("unanalyzable: %s", g.Reason)
	}
	want(t, probeSets(t, g), Only(0).With(2))
}

func TestFallthroughMergesStates(t *testing.T) {
	// A fallthrough body is a second predecessor of the next case: the
	// probe joins the fallen-through {C} with the direct-dispatch {B} —
	// exactly the φ a value-flow analysis must place there.
	g := buildFunc(t, `
		switch x {
		case A:
			x = C
			fallthrough
		case B:
			probe()
		}
	`)
	if g.Unanalyzable {
		t.Fatalf("unanalyzable: %s", g.Reason)
	}
	want(t, probeSets(t, g), Only(1).With(2))
}

func TestPanicInsideBranchKeepsOtherPaths(t *testing.T) {
	// A switch where one case panics: the probe merges only the
	// surviving cases.
	g := buildFunc(t, `
		switch x {
		case A:
			panic("no A")
		case B:
			probe()
		}
		probe()
	`)
	if g.Unanalyzable {
		t.Fatalf("unanalyzable: %s", g.Reason)
	}
	// First probe: inside case B. Second: B's fallout plus the default
	// (x not in {A, B}) dispatch edge — everything but A.
	want(t, probeSets(t, g), Only(1), Full(3).Without(0))
}
