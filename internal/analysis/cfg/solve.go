package cfg

import "go/ast"

// A Set is a bitset over a value universe of at most 64 members — the
// lattice element of the forward may-analysis: bit i set means "the
// tracked expression may hold universe value i here".
type Set uint64

// Full returns the set containing universe values 0..n-1.
func Full(n int) Set {
	if n >= 64 {
		return ^Set(0)
	}
	return Set(1)<<n - 1
}

// Only returns the singleton set {i}.
func Only(i int) Set { return Set(1) << i }

// Has reports whether i is in the set.
func (s Set) Has(i int) bool { return s&Only(i) != 0 }

// With returns s ∪ {i}.
func (s Set) With(i int) Set { return s | Only(i) }

// Without returns s ∖ {i}.
func (s Set) Without(i int) Set { return s &^ Only(i) }

// Union returns s ∪ t.
func (s Set) Union(t Set) Set { return s | t }

// Intersect returns s ∩ t.
func (s Set) Intersect(t Set) Set { return s & t }

// Empty reports whether the set has no members.
func (s Set) Empty() bool { return s == 0 }

// Each calls fn for every member in ascending order.
func (s Set) Each(fn func(i int)) {
	for i := 0; s != 0; i, s = i+1, s>>1 {
		if s&1 != 0 {
			fn(i)
		}
	}
}

// Len returns the number of members.
func (s Set) Len() int {
	n := 0
	for ; s != 0; s >>= 1 {
		n += int(s & 1)
	}
	return n
}

// Solve runs the forward may-analysis to a fixpoint and returns each
// block's entry set. The transfer function folds one statement over the
// incoming set; refine narrows a set by an edge condition (it receives
// the edge's Cond, never nil). Meet over paths is union, so the result
// over-approximates every execution.
func (g *Graph) Solve(entry Set, transfer func(s ast.Stmt, in Set) Set, refine func(c *Cond, in Set) Set) map[*Block]Set {
	in := make(map[*Block]Set, len(g.Blocks))
	seen := make(map[*Block]bool, len(g.Blocks))
	in[g.Entry] = entry
	seen[g.Entry] = true

	work := []*Block{g.Entry}
	queued := map[*Block]bool{g.Entry: true}
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		queued[blk] = false

		out := in[blk]
		for _, s := range blk.Stmts {
			out = transfer(s, out)
		}
		for _, e := range blk.Succs {
			v := out
			if e.Cond != nil && refine != nil {
				v = refine(e.Cond, v)
			}
			next := in[e.To].Union(v)
			if !seen[e.To] || next != in[e.To] {
				in[e.To] = next
				seen[e.To] = true
				if !queued[e.To] {
					queued[e.To] = true
					work = append(work, e.To)
				}
			}
		}
	}
	return in
}
