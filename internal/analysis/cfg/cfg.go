// Package cfg builds intraprocedural control-flow graphs over Go function
// bodies and solves forward may-analyses on them, sized for the rololint
// suite's needs: tracking the possible values of one expression drawn from
// a small finite universe (such as a disk power-state field) through
// branches, loops and switches.
//
// The graph normalizes branch conditions: an `if x == C` / `if x != C`
// statement and a `switch x { case C1, C2: }` statement both annotate
// their outgoing edges with a Cond carrying the compared expression and
// the constant candidates the edge implies (or excludes). Analyzers
// interpret Conds against their own tracked expression; unrecognized
// conditions simply carry no Cond and refine nothing, which keeps the
// analysis sound (over-approximate).
//
// Labeled for/range/switch statements are modeled: a labeled break or
// continue resolves to the labeled construct's exit or post block, so the
// nested-loop escape idioms survive analysis. Constructs the builder does
// not model — goto, labels on plain statements, type switches and select —
// mark the whole graph Unanalyzable; callers must then assume the full
// value set everywhere in the function, again erring on the side of
// over-approximation.
package cfg

import (
	"go/ast"
	"go/token"
)

// A Block is a straight-line sequence of statements with no internal
// control transfer. Some entries are synthetic ExprStmt wrappers around
// branch conditions, switch tags and case expressions, so that transfer
// functions observe every expression evaluated on the path.
type Block struct {
	Index int
	Stmts []ast.Stmt
	Succs []Edge
}

// An Edge connects a block to a successor, optionally refined by the
// branch condition that must hold along it.
type Edge struct {
	To   *Block
	Cond *Cond

	// If, when non-nil, is the raw boolean condition controlling a two-way
	// branch (an if statement or a for-loop test): the edge is taken when
	// If evaluates to true (Branch > 0) or false (Branch < 0). Unlike Cond,
	// which only exists for normalized `x == C` / `x != C` comparisons, If
	// carries every branch condition, so value-flow analyses can interpret
	// richer forms (bare booleans, nil checks, relational bounds) without
	// widening the Cond vocabulary the set-based analyzers consume.
	If     ast.Expr
	Branch int8
}

// A Cond states that, along its edge, Expr is equal to one of Vals
// (Negated false) or none of them (Negated true).
type Cond struct {
	Expr    ast.Expr
	Vals    []ast.Expr
	Negated bool
}

// A Graph is the control-flow graph of one function body.
type Graph struct {
	Entry  *Block
	Blocks []*Block

	// Unanalyzable is set when the body uses control flow the builder
	// does not model; Reason names the first offending construct.
	Unanalyzable bool
	Reason       string
}

// Build constructs the CFG of body. It never fails: unsupported control
// flow yields a structurally valid graph flagged Unanalyzable.
func Build(body *ast.BlockStmt) *Graph {
	b := &builder{g: &Graph{}}
	b.g.Entry = b.newBlock()
	b.cur = b.g.Entry
	b.stmts(body.List)
	return b.g
}

type loopCtx struct {
	brk  *Block // break target
	cont *Block // continue target
}

type builder struct {
	g     *Graph
	cur   *Block // nil while the current point is unreachable
	loops []loopCtx
	brks  []*Block // innermost breakable targets (loops and switches)

	// pendingLabel is the label of a LabeledStmt whose inner statement is
	// about to be built; the loop/switch builders consume it, registering
	// their break (and, for loops, continue) targets under it.
	pendingLabel string
	// labeled maps active labels to their targets. cont is nil for labeled
	// switches (continue may not name a switch label in valid Go). Labels
	// are function-unique, so entries are never overwritten.
	labeled map[string]loopCtx
}

// takeLabel consumes the pending label, registering targets under it.
func (b *builder) takeLabel(brk, cont *Block) {
	if b.pendingLabel == "" {
		return
	}
	if b.labeled == nil {
		b.labeled = make(map[string]loopCtx)
	}
	b.labeled[b.pendingLabel] = loopCtx{brk: brk, cont: cont}
	b.pendingLabel = ""
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) unsupported(what string) {
	if !b.g.Unanalyzable {
		b.g.Unanalyzable = true
		b.g.Reason = what
	}
}

// edge links from → to (nil cond), unless from is nil (unreachable).
func edge(from, to *Block, cond *Cond) {
	if from != nil {
		from.Succs = append(from.Succs, Edge{To: to, Cond: cond})
	}
}

// condEdge links from → to as one arm of a two-way boolean branch.
func condEdge(from, to *Block, cond *Cond, ifExpr ast.Expr, branch int8) {
	if from != nil {
		from.Succs = append(from.Succs, Edge{To: to, Cond: cond, If: ifExpr, Branch: branch})
	}
}

// emit appends a statement to the current block.
func (b *builder) emit(s ast.Stmt) {
	if b.cur != nil {
		b.cur.Stmts = append(b.cur.Stmts, s)
	}
}

// emitExpr records the evaluation of a condition or tag expression.
func (b *builder) emitExpr(e ast.Expr) {
	if e != nil {
		b.emit(&ast.ExprStmt{X: e})
	}
}

func (b *builder) stmts(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmts(s.List)
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s)
	case *ast.RangeStmt:
		b.rangeStmt(s)
	case *ast.SwitchStmt:
		b.switchStmt(s)
	case *ast.TypeSwitchStmt:
		b.unsupported("type switch")
		b.emit(s)
	case *ast.SelectStmt:
		b.unsupported("select")
		b.emit(s)
	case *ast.LabeledStmt:
		switch s.Stmt.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt:
			// The loop/switch builder registers its targets under the
			// label, so `break L` / `continue L` resolve structurally.
			b.pendingLabel = s.Label.Name
			b.stmt(s.Stmt)
			b.pendingLabel = ""
		default:
			// A label on any other statement only matters as a goto or
			// unmodeled-branch target.
			b.unsupported("label")
			b.stmt(s.Stmt)
		}
	case *ast.ReturnStmt:
		b.emit(s)
		b.cur = nil
	case *ast.ExprStmt:
		b.emit(s)
		if isPanicCall(s.X) {
			// panic never returns: statements after it are unreachable,
			// exactly like a return. (The check is syntactic — a local
			// function shadowing the builtin would be misread — but
			// shadowing panic has no place in this tree.)
			b.cur = nil
		}
	case *ast.BranchStmt:
		b.branchStmt(s)
	default:
		// Assignments, declarations, defer, go, inc/dec, empty:
		// straight-line.
		b.emit(s)
	}
}

// IsPanicStmt reports whether s is a statement-level call to the panic
// builtin — the terminator the builder treats like a return. Analyzers use
// it to exclude panic exits when classifying function exit states.
func IsPanicStmt(s ast.Stmt) bool {
	es, ok := s.(*ast.ExprStmt)
	return ok && isPanicCall(es.X)
}

// isPanicCall recognizes a call to the panic builtin.
func isPanicCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}

func (b *builder) branchStmt(s *ast.BranchStmt) {
	if s.Label != nil && s.Tok != token.GOTO {
		ctx, ok := b.labeled[s.Label.Name]
		if !ok || (s.Tok == token.CONTINUE && ctx.cont == nil) {
			// A forward-referenced label (legal only for goto, handled
			// below) or a malformed tree.
			b.unsupported("labeled " + s.Tok.String())
			b.cur = nil
			return
		}
		switch s.Tok {
		case token.BREAK:
			edge(b.cur, ctx.brk, nil)
		case token.CONTINUE:
			edge(b.cur, ctx.cont, nil)
		}
		b.cur = nil
		return
	}
	switch s.Tok {
	case token.BREAK:
		if n := len(b.brks); n > 0 {
			edge(b.cur, b.brks[n-1], nil)
		}
		b.cur = nil
	case token.CONTINUE:
		if n := len(b.loops); n > 0 {
			edge(b.cur, b.loops[n-1].cont, nil)
		}
		b.cur = nil
	case token.GOTO:
		b.unsupported("goto")
		b.cur = nil
	case token.FALLTHROUGH:
		// Handled structurally by switchStmt; reaching here means a
		// malformed tree — ignore.
	}
}

func (b *builder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	b.emitExpr(s.Cond)
	condBlk := b.cur
	onTrue, onFalse := normalizeCond(s.Cond)

	thenBlk := b.newBlock()
	condEdge(condBlk, thenBlk, onTrue, s.Cond, 1)
	join := b.newBlock()

	b.cur = thenBlk
	b.stmts(s.Body.List)
	edge(b.cur, join, nil)

	if s.Else != nil {
		elseBlk := b.newBlock()
		condEdge(condBlk, elseBlk, onFalse, s.Cond, -1)
		b.cur = elseBlk
		b.stmt(s.Else)
		edge(b.cur, join, nil)
	} else {
		condEdge(condBlk, join, onFalse, s.Cond, -1)
	}
	b.cur = join
}

func (b *builder) forStmt(s *ast.ForStmt) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	head := b.newBlock()
	edge(b.cur, head, nil)
	b.cur = head
	b.emitExpr(s.Cond)
	condBlk := b.cur

	exit := b.newBlock()
	post := head
	if s.Post != nil {
		post = b.newBlock()
	}

	body := b.newBlock()
	if s.Cond != nil {
		onTrue, onFalse := normalizeCond(s.Cond)
		condEdge(condBlk, body, onTrue, s.Cond, 1)
		condEdge(condBlk, exit, onFalse, s.Cond, -1)
	} else {
		edge(condBlk, body, nil)
	}

	b.takeLabel(exit, post)
	b.loops = append(b.loops, loopCtx{brk: exit, cont: post})
	b.brks = append(b.brks, exit)
	b.cur = body
	b.stmts(s.Body.List)
	edge(b.cur, post, nil)
	b.loops = b.loops[:len(b.loops)-1]
	b.brks = b.brks[:len(b.brks)-1]

	if s.Post != nil {
		b.cur = post
		b.stmt(s.Post)
		edge(b.cur, head, nil)
	}
	b.cur = exit
}

func (b *builder) rangeStmt(s *ast.RangeStmt) {
	b.emitExpr(s.X)
	head := b.newBlock()
	edge(b.cur, head, nil)
	exit := b.newBlock()
	body := b.newBlock()
	edge(head, body, nil)
	edge(head, exit, nil)

	b.takeLabel(exit, head)
	b.loops = append(b.loops, loopCtx{brk: exit, cont: head})
	b.brks = append(b.brks, exit)
	b.cur = body
	b.stmts(s.Body.List)
	edge(b.cur, head, nil)
	b.loops = b.loops[:len(b.loops)-1]
	b.brks = b.brks[:len(b.brks)-1]

	b.cur = exit
}

func (b *builder) switchStmt(s *ast.SwitchStmt) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	b.emitExpr(s.Tag)
	dispatch := b.cur
	exit := b.newBlock()
	b.takeLabel(exit, nil)

	// First pass: create the body block of every clause so fallthrough
	// can link forward.
	var clauses []*ast.CaseClause
	var bodies []*Block
	for _, c := range s.Body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		clauses = append(clauses, cc)
		bodies = append(bodies, b.newBlock())
	}

	// Dispatch edges. With a tag, each case edge implies tag ∈ case
	// values and the default edge implies tag ∉ all case values. Without
	// a tag, a single-expression `case x == C:` is normalized like an if
	// condition; anything else carries no Cond.
	var allVals []ast.Expr
	hasDefault := false
	for i, cc := range clauses {
		if cc.List == nil {
			hasDefault = true
			_ = i
			continue
		}
		allVals = append(allVals, cc.List...)
	}
	for i, cc := range clauses {
		var cond *Cond
		switch {
		case cc.List == nil:
			if s.Tag != nil && len(allVals) > 0 {
				cond = &Cond{Expr: s.Tag, Vals: allVals, Negated: true}
			}
		case s.Tag != nil:
			cond = &Cond{Expr: s.Tag, Vals: cc.List}
		case len(cc.List) == 1:
			cond, _ = normalizeCond(cc.List[0])
		}
		edge(dispatch, bodies[i], cond)
	}
	if !hasDefault {
		var cond *Cond
		if s.Tag != nil && len(allVals) > 0 {
			cond = &Cond{Expr: s.Tag, Vals: allVals, Negated: true}
		}
		edge(dispatch, exit, cond)
	}

	// Second pass: clause bodies.
	b.brks = append(b.brks, exit)
	for i, cc := range clauses {
		b.cur = bodies[i]
		stmts := cc.Body
		fallsThrough := false
		if n := len(stmts); n > 0 {
			if br, ok := stmts[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH && br.Label == nil {
				fallsThrough = true
				stmts = stmts[:n-1]
			}
		}
		b.stmts(stmts)
		if fallsThrough && i+1 < len(bodies) {
			edge(b.cur, bodies[i+1], nil)
		} else {
			edge(b.cur, exit, nil)
		}
	}
	b.brks = b.brks[:len(b.brks)-1]
	b.cur = exit
}

// normalizeCond recognizes `x == C` and `x != C` and returns the Conds
// implied on the true and false edges; unrecognized conditions yield nil
// (no refinement).
func normalizeCond(cond ast.Expr) (onTrue, onFalse *Cond) {
	bin, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok {
		return nil, nil
	}
	switch bin.Op {
	case token.EQL:
		eq := &Cond{Expr: bin.X, Vals: []ast.Expr{bin.Y}}
		ne := &Cond{Expr: bin.X, Vals: []ast.Expr{bin.Y}, Negated: true}
		return eq, ne
	case token.NEQ:
		eq := &Cond{Expr: bin.X, Vals: []ast.Expr{bin.Y}}
		ne := &Cond{Expr: bin.X, Vals: []ast.Expr{bin.Y}, Negated: true}
		return ne, eq
	}
	return nil, nil
}
