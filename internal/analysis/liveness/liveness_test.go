package liveness_test

import (
	"testing"

	"github.com/rolo-storage/rolo/internal/analysis/analysistest"
	"github.com/rolo-storage/rolo/internal/analysis/liveness"
)

func TestLockOrder(t *testing.T) {
	analysistest.Run(t, "testdata", liveness.LockOrder, "fix/lockorder")
}

func TestChanMisuse(t *testing.T) {
	analysistest.Run(t, "testdata", liveness.ChanMisuse, "fix/chanmisuse")
}

func TestGoroLeak(t *testing.T) {
	analysistest.Run(t, "testdata", liveness.GoroLeak, "fix/goroleak")
}
