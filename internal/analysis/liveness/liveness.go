// Package liveness is rololint's deadlock-and-liveness analyzer family:
// three interprocedural checks that prove the concurrency in the tree
// makes progress, complementing the raceguard family, which proves it is
// mutually exclusive. Raceguard answers "is this access protected?";
// liveness answers "can this program keep running?" — no lock-order
// cycles (lockorder), no blocking channel operations inside critical
// sections and no channel loops nothing ever ends (chanmisuse), and no
// goroutine without a provable termination path (goroleak).
//
// All three build on the PR-7 interprocedural layer: per-function
// summaries computed bottom-up over callgraph SCCs and shipped across
// packages as facts ("lockorder", "chanmisuse", "goroleak" namespaces),
// so a helper that takes a lock, blocks on a channel, closes its
// argument, or loops forever carries that behavior to every caller, in
// this package and in every importer.
//
// Lock identity here is class-based (lockdep-style), unlike raceguard's
// per-instance textual chains: the mutex field `mu` of any value of type
// T is the lock class "(pkg.T).mu", and a package-level mutex chain is
// "pkg.chain". Two goroutines deadlock by acquiring two *instances* in
// opposite orders just as surely as one pair, so the order graph must
// merge instances — exactly what canonicalID does.
//
// Directives:
//
//	//rolosan:lockorder A < B   declare intended acquisition order;
//	                            lockorder flags B-held-acquiring-A edges
//	                            even before a cycle closes
//	//rolosan:daemon <reason>   exempt a deliberately process-lifetime
//	                            goroutine (or the function it runs) from
//	                            goroleak's termination obligation
package liveness

import (
	"go/ast"
	"go/types"
	"strings"
)

// canonicalID renders the package-independent lock-class identity of a
// selector chain: "(pkg.Type).field" keyed by the owner type of the final
// field for chains rooted at locals, parameters, or receivers, and
// "pkg.chain" for chains rooted at package-level variables. Chains it
// cannot name this way — bare local mutex values, unnamed owner structs,
// promoted fields — yield ok=false and stay out of the order graph.
func canonicalID(root types.Object, text string) (string, bool) {
	if root == nil || text == "" {
		return "", false
	}
	if v, ok := root.(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
		return v.Pkg().Path() + "." + text, true
	}
	segs := strings.Split(text, ".")
	if len(segs) < 2 {
		return "", false
	}
	t := root.Type()
	for i := 1; i < len(segs)-1; i++ {
		f := fieldOf(t, segs[i])
		if f == nil {
			return "", false
		}
		t = f.Type()
	}
	owner := namedOf(t)
	if owner == nil || owner.Obj().Pkg() == nil {
		return "", false
	}
	last := segs[len(segs)-1]
	if fieldOf(t, last) == nil {
		return "", false
	}
	return "(" + owner.Obj().Pkg().Path() + "." + owner.Obj().Name() + ")." + last, true
}

// fieldOf resolves a direct (non-promoted) struct field by name, looking
// through one pointer indirection.
func fieldOf(t types.Type, name string) *types.Var {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	for i := 0; i < st.NumFields(); i++ {
		if f := st.Field(i); f.Name() == name {
			return f
		}
	}
	return nil
}

// namedOf strips one pointer indirection and returns the named type, or
// nil.
func namedOf(t types.Type) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// displayID shortens a canonical lock-class or channel-field ID for
// diagnostics: the package path collapses to its base element, so
// "(github.com/x/y/internal/journal.AsyncSink).mu" reads
// "(journal.AsyncSink).mu".
func displayID(id string) string {
	if strings.HasPrefix(id, "(") {
		if i := strings.IndexByte(id, ')'); i > 0 {
			inner := id[1:i]
			if j := strings.LastIndexByte(inner, '.'); j > 0 {
				return "(" + pathBase(inner[:j]) + "." + inner[j+1:] + ")" + id[i+1:]
			}
		}
		return id
	}
	if k := strings.LastIndexByte(id, '/'); k >= 0 {
		return id[k+1:]
	}
	return id
}

func pathBase(path string) string {
	return path[strings.LastIndexByte(path, '/')+1:]
}

// sameTree reports whether two packages share the leading import-path
// segment — a cheap stand-in for "same module". Blocks facts are trusted
// only within the tree under analysis: the Go runtime coordinates its GC
// and signal handling over literal channels, so when a driver computes
// facts for the standard library (go vet does), much of it — fmt.Sprintf
// via reflect, for one — would otherwise summarize as "may block on
// channel traffic". Those channels are scheduler internals no caller can
// unblock; findings about them are noise.
func sameTree(a, b *types.Package) bool {
	if a == nil || b == nil {
		return false
	}
	if a == b {
		return true
	}
	return firstSegment(a.Path()) == firstSegment(b.Path())
}

func firstSegment(path string) string {
	if i := strings.IndexByte(path, '/'); i >= 0 {
		return path[:i]
	}
	return path
}

// rootOf resolves the base identifier of a selector chain to its object.
func rootOf(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			if obj := info.Uses[x]; obj != nil {
				return obj
			}
			return info.Defs[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// identObj returns the object of a plain identifier expression, or nil.
func identObj(info *types.Info, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

// funcBodies yields every function body in the file — declarations and
// function literals — with the declaration (nil for literals). Literal
// bodies are visited separately from their enclosing functions because
// they run at another time: lock state never flows into them.
func funcBodies(file *ast.File, fn func(decl *ast.FuncDecl, body *ast.BlockStmt)) {
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				fn(n, n.Body)
			}
		case *ast.FuncLit:
			fn(nil, n.Body)
		}
		return true
	})
}

// directiveText strips the comment marker and returns the text after the
// given directive prefix, or ok=false. Only line comments carry
// directives (the same convention as //lint:allow).
func directiveText(c *ast.Comment, directive string) (string, bool) {
	text, ok := strings.CutPrefix(c.Text, "//")
	if !ok {
		return "", false
	}
	return strings.CutPrefix(strings.TrimSpace(text), directive)
}
