package liveness

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"reflect"
	"sort"
	"strconv"
	"strings"

	"github.com/rolo-storage/rolo/internal/analysis"
	"github.com/rolo-storage/rolo/internal/analysis/callgraph"
	"github.com/rolo-storage/rolo/internal/analysis/cfg"
	"github.com/rolo-storage/rolo/internal/analysis/raceguard"
)

const (
	orderNS            = "lockorder"
	lockorderDirective = "rolosan:lockorder"
)

// An OrderSite is one lock-class acquisition a function (or anything it
// calls) performs: the canonical class ID and the source site
// ("file.go:12") of the actual acquisition, however deep in the call
// chain it happens.
type OrderSite struct {
	ID   string `json:"id"`
	Site string `json:"site"`
}

// An OrderEdge records that the function acquires To while holding From,
// directly or transitively; Site is where To is acquired.
type OrderEdge struct {
	From string `json:"from"`
	To   string `json:"to"`
	Site string `json:"site"`
}

// An OrderSummary is the "lockorder" fact of one function: what it
// acquires and which lock-order edges it closes, including everything its
// callees contribute. Summaries are canonical — class IDs, not instance
// chains — so they compose across call and package boundaries.
type OrderSummary struct {
	Acquires []OrderSite `json:"acquires,omitempty"`
	Edges    []OrderEdge `json:"edges,omitempty"`
}

// LockOrder reports potential deadlocks: cycles in the package's global
// lock-order graph, each with a full witness path naming the acquisition
// site of every edge, and violations of declared `//rolosan:lockorder
// A < B` orderings even when no cycle has closed yet.
var LockOrder = &analysis.Analyzer{
	Name: "lockorder",
	Doc: `report lock-order cycles (potential deadlocks) and declared-order violations

Every mutex acquisition is classified by lock class — "(pkg.Type).field"
for a field mutex of any instance of Type, "pkg.chain" for a package-level
mutex — and an edge A -> B is recorded whenever B is acquired while A is
held, with helper acquisitions counted through the same per-function
summaries the lockcontract analyzer exports. A cycle in the resulting
graph means two goroutines can acquire the classes in conflicting orders
and deadlock; the report walks the cycle edge by edge with each
acquisition site. "//rolosan:lockorder A < B" declares the intended order
and turns any B-before-A edge into a finding without waiting for the
reverse edge to appear.`,
	Run: runLockOrder,
}

type lockOrder struct {
	pass     *analysis.Pass
	model    *raceguard.LockModel
	local    map[*types.Func]*OrderSummary
	anchored map[*types.Func][]anchorEdge
	imported map[*types.Func]*OrderSummary
	missing  map[*types.Func]bool
}

// An anchorEdge is a summary edge plus the local position that witnessed
// it (the acquisition site, or the call site that imported it), giving
// cycle reports an anchor inside the package under analysis.
type anchorEdge struct {
	from, to, site string
	pos            token.Pos
}

func runLockOrder(pass *analysis.Pass) error {
	lo := &lockOrder{
		pass:     pass,
		model:    raceguard.NewLockModel(pass),
		local:    make(map[*types.Func]*OrderSummary),
		anchored: make(map[*types.Func][]anchorEdge),
		imported: make(map[*types.Func]*OrderSummary),
		missing:  make(map[*types.Func]bool),
	}
	// Re-export the lock summaries so importers' lockorder runs see
	// helper-acquired locks even when lockcontract is not in the suite.
	lo.model.ExportFacts()
	// Bottom-up over SCCs, iterating each component to a fixed point so
	// recursion groups converge (edges only accumulate, so the chain is
	// finite).
	for _, comp := range lo.model.Graph().SCCs() {
		for round := 0; round <= len(comp); round++ {
			changed := false
			for _, node := range comp {
				sum, anchors := lo.summarize(node)
				if !reflect.DeepEqual(lo.local[node.Func], sum) {
					changed = true
				}
				lo.local[node.Func] = sum
				lo.anchored[node.Func] = anchors
			}
			if !changed {
				break
			}
		}
	}
	for _, node := range lo.model.Graph().All() {
		if s := lo.local[node.Func]; s != nil && (len(s.Acquires) > 0 || len(s.Edges) > 0) {
			pass.ExportFact(orderNS, node.Func, s)
		}
	}
	edges := lo.assemble()
	lo.reportCycles(edges)
	lo.checkDirectives(edges)
	return nil
}

// An orderEvent is one acquisition-bearing operation inside a statement:
// a direct Lock/RLock (one site) or a call whose summary acquires
// (the callee's sites and transitive edges).
type orderEvent struct {
	acquires []OrderSite
	edges    []OrderEdge
	pos      token.Pos
}

// summarize computes one function's OrderSummary and its locally-anchored
// edges. Each statement is visited with the set of lock classes that may
// be held just before it (per-chain summary-aware dataflow), and every
// acquisition event at that point — direct or through a callee — closes
// an edge from each held class.
func (lo *lockOrder) summarize(node *callgraph.Node) (*OrderSummary, []anchorEdge) {
	body := node.Decl.Body
	chains := lo.model.Chains(body)
	for _, r := range lo.model.Requires(node.Decl) {
		seen := false
		for _, c := range chains {
			if c.Text == r.Text {
				seen = true
				break
			}
		}
		if !seen {
			chains = append(chains, r)
		}
	}
	ids := make(map[string]string)
	for _, c := range chains {
		if id, ok := canonicalID(c.Root, c.Text); ok {
			ids[c.Text] = id
		}
	}

	sum := &OrderSummary{}
	var anchors []anchorEdge
	acqSeen := make(map[string]bool)
	edgeSeen := make(map[[2]string]bool)
	addAcq := func(s OrderSite) {
		if !acqSeen[s.ID] {
			acqSeen[s.ID] = true
			sum.Acquires = append(sum.Acquires, s)
		}
	}
	addEdge := func(from, to, site string, pos token.Pos) {
		k := [2]string{from, to}
		if !edgeSeen[k] {
			edgeSeen[k] = true
			sum.Edges = append(sum.Edges, OrderEdge{From: from, To: to, Site: site})
			anchors = append(anchors, anchorEdge{from: from, to: to, site: site, pos: pos})
		}
	}
	merge := func(ev orderEvent, held []string) {
		for _, a := range ev.acquires {
			addAcq(a)
			for _, h := range held {
				addEdge(h, a.ID, a.Site, ev.pos)
			}
		}
		for _, e := range ev.edges {
			addEdge(e.From, e.To, e.Site, ev.pos)
		}
	}

	g := cfg.Build(body)
	if g.Unanalyzable {
		// Degraded mode (labeled break, goto, …): acquisitions and callee
		// edges still count — they are held-context-independent — but no
		// new edges are inferred here.
		for _, ev := range lo.events(body, ids) {
			merge(ev, nil)
		}
		normalizeSummary(sum)
		return sum, anchors
	}

	// One solve per tracked chain, plus a chain-less solve whose domain is
	// the set of reachable blocks.
	reach := lo.model.States(g, node.Decl, "")
	states := make(map[string]map[*cfg.Block]cfg.Set, len(ids))
	for text := range ids {
		states[text] = lo.model.States(g, node.Decl, text)
	}

	for _, blk := range g.Blocks {
		if _, ok := reach[blk]; !ok {
			continue
		}
		cur := make(map[string]cfg.Set, len(states))
		for text, sets := range states {
			cur[text] = sets[blk]
		}
		for _, s := range blk.Stmts {
			if evs := lo.events(s, ids); len(evs) > 0 {
				heldSet := make(map[string]bool)
				for text, set := range cur {
					if set.Has(raceguard.StateLocked) || set.Has(raceguard.StateRLocked) {
						heldSet[ids[text]] = true
					}
				}
				held := make([]string, 0, len(heldSet))
				for id := range heldSet {
					held = append(held, id)
				}
				sort.Strings(held)
				for _, ev := range evs {
					merge(ev, held)
				}
			}
			for text := range cur {
				cur[text] = lo.model.Fold(text, s, cur[text])
			}
		}
	}
	normalizeSummary(sum)
	return sum, anchors
}

// events collects the acquisition events inside one statement (or body),
// skipping function literals, go statements, and defers: those run at
// another time, under another goroutine's lock state.
func (lo *lockOrder) events(n ast.Node, ids map[string]string) []orderEvent {
	info := lo.pass.TypesInfo
	var evs []orderEvent
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit, *ast.GoStmt, *ast.DeferStmt:
			return false
		case *ast.CallExpr:
			if chain, method, ok := raceguard.LockOp(info, x); ok {
				if method == "Lock" || method == "RLock" {
					if id, ok := ids[chain]; ok {
						evs = append(evs, orderEvent{
							acquires: []OrderSite{{ID: id, Site: lo.site(x.Pos())}},
							pos:      x.Pos(),
						})
					}
				}
				return true
			}
			if callee := callgraph.StaticCallee(info, x); callee != nil {
				if s := lo.forFunc(callee); s != nil && (len(s.Acquires) > 0 || len(s.Edges) > 0) {
					evs = append(evs, orderEvent{acquires: s.Acquires, edges: s.Edges, pos: x.Pos()})
				}
			}
		}
		return true
	})
	return evs
}

// forFunc returns the best-known summary of fn: the in-flight local one
// for functions of this package, the imported fact for everything else.
func (lo *lockOrder) forFunc(fn *types.Func) *OrderSummary {
	if fn == nil {
		return nil
	}
	if lo.model.Graph().Nodes[fn] != nil {
		return lo.local[fn]
	}
	if s, ok := lo.imported[fn]; ok {
		return s
	}
	if lo.missing[fn] {
		return nil
	}
	var s OrderSummary
	if lo.pass.ImportFact(orderNS, fn, &s) {
		lo.imported[fn] = &s
		return &s
	}
	lo.missing[fn] = true
	return nil
}

func normalizeSummary(s *OrderSummary) {
	sort.Slice(s.Acquires, func(i, j int) bool { return s.Acquires[i].ID < s.Acquires[j].ID })
	sort.Slice(s.Edges, func(i, j int) bool {
		a, b := s.Edges[i], s.Edges[j]
		if a.From != b.From {
			return a.From < b.From
		}
		return a.To < b.To
	})
}

func (lo *lockOrder) site(pos token.Pos) string {
	p := lo.pass.Fset.Position(pos)
	return filepath.Base(p.Filename) + ":" + strconv.Itoa(p.Line)
}

// A pkgEdge is one edge of the package-level lock-order graph with its
// local anchor. The first witness of an edge wins, and functions are
// visited in declaration order, so the anchor is deterministic.
type pkgEdge struct {
	site string
	pos  token.Pos
}

// pkgEdges is the assembled package-level lock-order graph.
type pkgEdges struct {
	table map[[2]string]pkgEdge
	ids   map[string]bool
}

func newPkgEdges() *pkgEdges {
	return &pkgEdges{table: make(map[[2]string]pkgEdge), ids: make(map[string]bool)}
}

func (pe *pkgEdges) add(from, to, site string, pos token.Pos) {
	k := [2]string{from, to}
	if _, ok := pe.table[k]; ok {
		return
	}
	pe.table[k] = pkgEdge{site: site, pos: pos}
	pe.ids[from] = true
	pe.ids[to] = true
}

// cycles enumerates the graph's elementary cycles as canonical ID
// sequences: vertices indexed in sorted-ID order, so every cycle starts
// at its alphabetically-smallest class and the output is independent of
// edge insertion order.
func (pe *pkgEdges) cycles() [][]string {
	ids := make([]string, 0, len(pe.ids))
	for id := range pe.ids {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	index := make(map[string]int, len(ids))
	for i, id := range ids {
		index[id] = i
	}
	succs := make([][]int, len(ids))
	for k := range pe.table {
		i := index[k[0]]
		succs[i] = append(succs[i], index[k[1]])
	}
	raw := callgraph.EnumerateCycles(len(ids), func(i int) []int { return succs[i] })
	out := make([][]string, len(raw))
	for i, cyc := range raw {
		names := make([]string, len(cyc))
		for j, v := range cyc {
			names[j] = ids[v]
		}
		out[i] = names
	}
	return out
}

// witness renders one cycle's report message, walking the cycle edge by
// edge with each acquisition site.
func (pe *pkgEdges) witness(names []string) string {
	parts := make([]string, len(names))
	for i, from := range names {
		to := names[(i+1)%len(names)]
		e := pe.table[[2]string{from, to}]
		parts[i] = fmt.Sprintf("%s -> %s at %s", displayID(from), displayID(to), e.site)
	}
	return "potential deadlock: lock-order cycle: " + strings.Join(parts, "; ")
}

// anchor returns the earliest local position among the cycle's edges.
func (pe *pkgEdges) anchor(names []string) token.Pos {
	min := token.NoPos
	for i, from := range names {
		e := pe.table[[2]string{from, names[(i+1)%len(names)]}]
		if min == token.NoPos || e.pos < min {
			min = e.pos
		}
	}
	return min
}

func (lo *lockOrder) assemble() *pkgEdges {
	pe := newPkgEdges()
	for _, node := range lo.model.Graph().All() {
		for _, e := range lo.anchored[node.Func] {
			pe.add(e.from, e.to, e.site, e.pos)
		}
	}
	return pe
}

func cycleKey(names []string) string { return strings.Join(names, "|") }

// reportCycles reports every elementary cycle of the package graph,
// except cycles already wholly visible to a single imported package —
// those were reported where they were closed, and re-reporting them in
// every importer would bury the new information.
func (lo *lockOrder) reportCycles(pe *pkgEdges) {
	if len(pe.ids) == 0 {
		return
	}
	byOrigin := make(map[string]*pkgEdges)
	for fn, s := range lo.imported {
		if fn.Pkg() == nil {
			continue
		}
		origin := byOrigin[fn.Pkg().Path()]
		if origin == nil {
			origin = newPkgEdges()
			byOrigin[fn.Pkg().Path()] = origin
		}
		for _, e := range s.Edges {
			origin.add(e.From, e.To, e.Site, token.NoPos)
		}
	}
	suppressed := make(map[string]bool)
	for _, origin := range byOrigin {
		for _, cyc := range origin.cycles() {
			suppressed[cycleKey(cyc)] = true
		}
	}
	for _, cyc := range pe.cycles() {
		if suppressed[cycleKey(cyc)] {
			continue
		}
		lo.pass.Report(analysis.Diagnostic{
			Pos:      pe.anchor(cyc),
			Category: "cycle",
			Message:  pe.witness(cyc),
		})
	}
}

// checkDirectives parses the package's //rolosan:lockorder declarations
// and reports every edge that contradicts one.
func (lo *lockOrder) checkDirectives(pe *pkgEdges) {
	for _, f := range lo.pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := directiveText(c, lockorderDirective)
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) != 3 || fields[1] != "<" {
					lo.pass.Reportf(c.Pos(), "bad-directive",
						"malformed directive %q: want //rolosan:lockorder A < B", strings.TrimSpace(c.Text))
					continue
				}
				from, okFrom := lo.resolveOperand(fields[0])
				if !okFrom {
					lo.pass.Reportf(c.Pos(), "bad-directive",
						"cannot resolve %q in //rolosan:lockorder: want Type.field or a package-level mutex chain of this package", fields[0])
					continue
				}
				to, okTo := lo.resolveOperand(fields[2])
				if !okTo {
					lo.pass.Reportf(c.Pos(), "bad-directive",
						"cannot resolve %q in //rolosan:lockorder: want Type.field or a package-level mutex chain of this package", fields[2])
					continue
				}
				if e, ok := pe.table[[2]string{to, from}]; ok {
					lo.pass.Reportf(e.pos, "violation",
						"acquires %s while %s is held at %s, violating declared order //rolosan:lockorder %s < %s",
						displayID(from), displayID(to), e.site, fields[0], fields[2])
				}
			}
		}
	}
}

// resolveOperand maps a directive operand to a canonical lock-class ID:
// "Type.field" names a mutex field of a package-local type, anything
// rooted at a package-level variable names that chain.
func (lo *lockOrder) resolveOperand(op string) (string, bool) {
	pkg := lo.pass.Pkg
	if pkg == nil || op == "" {
		return "", false
	}
	base, rest, dotted := strings.Cut(op, ".")
	switch obj := pkg.Scope().Lookup(base).(type) {
	case *types.TypeName:
		if !dotted || strings.Contains(rest, ".") || fieldOf(obj.Type(), rest) == nil {
			return "", false
		}
		return "(" + pkg.Path() + "." + obj.Name() + ")." + rest, true
	case *types.Var:
		return pkg.Path() + "." + op, true
	}
	return "", false
}
