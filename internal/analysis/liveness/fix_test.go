package liveness_test

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"github.com/rolo-storage/rolo/internal/analysis"
	"github.com/rolo-storage/rolo/internal/analysis/liveness"
)

// The golden tests prove the suggested fixes produce the expected bytes;
// these prove they are idempotent: once a fix is applied, re-running the
// analyzer on the result reports nothing, so `rololint -fix` converges in
// one pass instead of oscillating.
func TestFixesIdempotent(t *testing.T) {
	cases := []struct {
		name     string
		analyzer *analysis.Analyzer
		category string
		src      string
	}{
		{
			name:     "chanmisuse unclosed-range defer close",
			analyzer: liveness.ChanMisuse,
			category: "unclosed-range",
			src: `package p

func produceAndDrain() {
	ch := make(chan int)
	go func() {
		for i := 0; i < 3; i++ {
			ch <- i
		}
	}()
	for v := range ch {
		work(v)
	}
}

func work(int) {}
`,
		},
		{
			name:     "goroleak missing daemon directive",
			analyzer: liveness.GoroLeak,
			category: "unterminated",
			src: `package p

func spawn() {
	go looper()
}

func looper() {
	for {
		work(0)
	}
}

func work(int) {}
`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			findings := runOnSource(t, tc.analyzer, tc.src)
			var fixable int
			for _, f := range findings {
				if f.Category == tc.category && len(f.Fixes) > 0 {
					fixable++
				}
			}
			if fixable == 0 {
				t.Fatalf("no fixable %q finding on the seed source; findings: %+v", tc.category, findings)
			}
			fixed, changed, err := analysis.ApplyFixesToSource("p.go", []byte(tc.src), findings)
			if err != nil {
				t.Fatalf("ApplyFixesToSource: %v", err)
			}
			if !changed {
				t.Fatal("ApplyFixesToSource reported no change")
			}
			for _, f := range runOnSource(t, tc.analyzer, string(fixed)) {
				if f.Category == tc.category {
					t.Errorf("finding survives its own fix: %s at %s\nfixed source:\n%s", f.Message, f.Pos, fixed)
				}
			}
		})
	}
}

// runOnSource typechecks one in-memory file as package example.com/p and
// runs the analyzer over it with no imported facts.
func runOnSource(t *testing.T, a *analysis.Analyzer, src string) []analysis.Finding {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := analysis.NewInfo()
	conf := types.Config{Importer: importer.Default()}
	pkg, err := conf.Check("example.com/p", fset, []*ast.File{file}, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	unit := &analysis.Unit{Fset: fset, Files: []*ast.File{file}, Pkg: pkg, Info: info}
	findings, err := analysis.RunAnalyzers(unit, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("RunAnalyzers: %v", err)
	}
	return findings
}
