package liveness

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"math/rand"
	"strings"
	"testing"
)

// The witness path is user-facing output: its rendering must be byte-for-
// byte deterministic regardless of the order edges were discovered in.
func TestWitnessRenderingDeterministic(t *testing.T) {
	type edge struct{ from, to, site string }
	edges := []edge{
		{"(pkg/a.T).mu", "(pkg/b.U).mu", "a.go:10"},
		{"(pkg/b.U).mu", "pkg/a.regMu", "b.go:20"},
		{"pkg/a.regMu", "(pkg/a.T).mu", "a.go:30"},
		{"(pkg/c.V).x", "(pkg/c.V).y", "c.go:5"},
		{"(pkg/c.V).y", "(pkg/c.V).x", "c.go:9"},
		{"(pkg/a.T).mu", "(pkg/c.V).x", "a.go:40"}, // acyclic bridge
	}
	golden := []string{
		"potential deadlock: lock-order cycle: (a.T).mu -> (b.U).mu at a.go:10; (b.U).mu -> a.regMu at b.go:20; a.regMu -> (a.T).mu at a.go:30",
		"potential deadlock: lock-order cycle: (c.V).x -> (c.V).y at c.go:5; (c.V).y -> (c.V).x at c.go:9",
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		shuffled := append([]edge(nil), edges...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		pe := newPkgEdges()
		for i, e := range shuffled {
			pe.add(e.from, e.to, e.site, token.Pos(i+1))
		}
		var got []string
		for _, cyc := range pe.cycles() {
			got = append(got, pe.witness(cyc))
		}
		if strings.Join(got, "\n") != strings.Join(golden, "\n") {
			t.Fatalf("trial %d: witness rendering diverged:\n--- got ---\n%s\n--- want ---\n%s",
				trial, strings.Join(got, "\n"), strings.Join(golden, "\n"))
		}
	}
}

func TestDisplayID(t *testing.T) {
	cases := []struct{ id, want string }{
		{"(github.com/x/y/internal/journal.AsyncSink).mu", "(journal.AsyncSink).mu"},
		{"(fix/lockorder.pair).a", "(lockorder.pair).a"},
		{"(p.T).mu", "(p.T).mu"},
		{"github.com/x/y/internal/experiments.names.mu", "experiments.names.mu"},
		{"fix/lockorder.regMu", "lockorder.regMu"},
		{"p.regMu", "p.regMu"},
	}
	for _, c := range cases {
		if got := displayID(c.id); got != c.want {
			t.Errorf("displayID(%q) = %q, want %q", c.id, got, c.want)
		}
	}
}

func TestCanonicalID(t *testing.T) {
	const src = `package p

import "sync"

type inner struct{ mu sync.Mutex }

type outer struct {
	mu sync.Mutex
	in inner
}

var regMu sync.Mutex

func f(o *outer, local sync.Mutex) {
	_ = o
	_ = local
	_ = regMu
}
`
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "p.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Defs: make(map[*ast.Ident]types.Object),
		Uses: make(map[*ast.Ident]types.Object),
	}
	conf := types.Config{Importer: importer.Default()}
	pkg, err := conf.Check("example.com/p", fset, []*ast.File{file}, info)
	if err != nil {
		t.Fatal(err)
	}
	scope := pkg.Scope()
	var paramO, paramLocal types.Object
	for _, obj := range info.Defs {
		switch {
		case obj == nil:
		case obj.Name() == "o":
			paramO = obj
		case obj.Name() == "local":
			paramLocal = obj
		}
	}
	cases := []struct {
		root types.Object
		text string
		want string
		ok   bool
	}{
		{paramO, "o.mu", "(example.com/p.outer).mu", true},
		{paramO, "o.in.mu", "(example.com/p.inner).mu", true},
		{scope.Lookup("regMu"), "regMu", "example.com/p.regMu", true},
		{paramLocal, "local", "", false}, // bare local mutex has no class
		{paramO, "o.missing", "", false},
		{nil, "o.mu", "", false},
	}
	for _, c := range cases {
		got, ok := canonicalID(c.root, c.text)
		if got != c.want || ok != c.ok {
			t.Errorf("canonicalID(%v, %q) = %q, %v; want %q, %v", c.root, c.text, got, ok, c.want, c.ok)
		}
	}
}
