package liveness

import (
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
	"sort"

	"github.com/rolo-storage/rolo/internal/analysis"
	"github.com/rolo-storage/rolo/internal/analysis/callgraph"
	"github.com/rolo-storage/rolo/internal/analysis/cfg"
	"github.com/rolo-storage/rolo/internal/analysis/raceguard"
)

const chanNS = "chanmisuse"

// A ChanSummary is the "chanmisuse" fact of one function: whether calling
// it may block on channel traffic (so callers must not hold a mutex
// across the call), which channel-typed parameters it eventually closes
// (directly, in a spawned goroutine, or through a callee), and which
// channel fields — by canonical "(pkg.Type).field" ID — it closes.
type ChanSummary struct {
	Blocks       bool     `json:"blocks,omitempty"`
	ClosesParams []int    `json:"closesParams,omitempty"`
	ClosesIDs    []string `json:"closesIds,omitempty"`
}

// ChanMisuse reports channel operations that destroy liveness: blocking
// sends, receives, or WaitGroup waits inside a mutex critical section
// (directly or through a summarized callee), ranges over channels that
// nothing reachable ever closes, and sends on channels that never leave
// the sending goroutine.
var ChanMisuse = &analysis.Analyzer{
	Name: "chanmisuse",
	Doc: `report blocking channel operations under a held mutex and channels nobody finishes

A channel send, receive, or sync.WaitGroup.Wait that blocks while a mutex
is held stalls every other goroutine contending for that mutex — and
deadlocks outright if the unblocking party needs the same lock. The check
reuses the summary-aware lock-state dataflow, so helper-acquired locks and
callees that block (a "blocks" fact) are both seen. sync.Cond.Wait is
exempt: it releases the mutex while parked.

A range over a channel terminates only when the channel is closed, so a
range whose channel has no reachable close — in this function, in a
goroutine it spawns, in a callee whose summary closes the parameter, or
(for channel fields) anywhere in the owning package and its summarized
callees — loops forever once the senders go quiet. A send on an
unbuffered channel that never escapes the current goroutine can never be
received and blocks forever.`,
	Run: runChanMisuse,
}

type chanMisuse struct {
	pass      *analysis.Pass
	model     *raceguard.LockModel
	local     map[*types.Func]*ChanSummary
	imported  map[*types.Func]*ChanSummary
	missing   map[*types.Func]bool
	pkgCloses map[string]bool
}

func runChanMisuse(pass *analysis.Pass) error {
	cm := &chanMisuse{
		pass:      pass,
		model:     raceguard.NewLockModel(pass),
		local:     make(map[*types.Func]*ChanSummary),
		imported:  make(map[*types.Func]*ChanSummary),
		missing:   make(map[*types.Func]bool),
		pkgCloses: make(map[string]bool),
	}
	// Re-export the lock summaries so importers' chanmisuse runs see
	// helper-acquired locks even when lockcontract is not in the suite.
	cm.model.ExportFacts()
	for _, comp := range cm.model.Graph().SCCs() {
		for round := 0; round <= len(comp); round++ {
			changed := false
			for _, node := range comp {
				sum := cm.summarize(node)
				if !reflect.DeepEqual(cm.local[node.Func], sum) {
					changed = true
				}
				cm.local[node.Func] = sum
			}
			if !changed {
				break
			}
		}
	}
	for _, node := range cm.model.Graph().All() {
		s := cm.local[node.Func]
		if s != nil && (s.Blocks || len(s.ClosesParams) > 0 || len(s.ClosesIDs) > 0) {
			pass.ExportFact(chanNS, node.Func, s)
		}
	}
	// The package-wide close set backs the channel-field range check: a
	// field class is "closed" if any function in this package closes it,
	// directly or through a summarized callee.
	for _, node := range cm.model.Graph().All() {
		if s := cm.local[node.Func]; s != nil {
			for _, id := range s.ClosesIDs {
				cm.pkgCloses[id] = true
			}
		}
	}
	for _, f := range pass.Files {
		funcBodies(f, func(decl *ast.FuncDecl, body *ast.BlockStmt) {
			cm.checkUnderLock(decl, body)
			cm.checkChannels(body)
		})
	}
	return nil
}

// summarize computes one function's ChanSummary. Blocking is judged over
// the code the call itself runs (literals, go statements, and defers
// excluded); closing is judged over everything the call sets in motion
// (literals and goroutines included), because "this channel will
// eventually be closed" is exactly as true for an async close.
func (cm *chanMisuse) summarize(node *callgraph.Node) *ChanSummary {
	info := cm.pass.TypesInfo
	sum := &ChanSummary{}

	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit, *ast.GoStmt, *ast.DeferStmt:
			return false
		case *ast.SelectStmt:
			if selectHasDefault(n) {
				return false
			}
			sum.Blocks = true
			return false
		case *ast.SendStmt:
			sum.Blocks = true
		case *ast.RangeStmt:
			if isChanType(info.TypeOf(n.X)) {
				sum.Blocks = true
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				sum.Blocks = true
			}
		case *ast.CallExpr:
			if isWaitGroupWait(info, n) {
				sum.Blocks = true
			} else if cm.calleeBlocks(n) {
				sum.Blocks = true
			}
		}
		return true
	})

	chanParams := make(map[types.Object]int)
	if fn := node.Func; fn != nil {
		if sig, ok := fn.Type().(*types.Signature); ok {
			for i := 0; i < sig.Params().Len(); i++ {
				if p := sig.Params().At(i); isChanType(p.Type()) {
					chanParams[p] = i
				}
			}
		}
	}
	closedParams := make(map[int]bool)
	closedIDs := make(map[string]bool)
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isBuiltinClose(info, call) && len(call.Args) == 1 {
			arg := ast.Unparen(call.Args[0])
			if obj := identObj(info, arg); obj != nil {
				if i, ok := chanParams[obj]; ok {
					closedParams[i] = true
				}
			} else if sel, ok := arg.(*ast.SelectorExpr); ok {
				if id, ok := canonicalID(rootOf(info, sel), types.ExprString(sel)); ok {
					closedIDs[id] = true
				}
			}
			return true
		}
		callee := callgraph.StaticCallee(info, call)
		if callee == nil {
			return true
		}
		s := cm.forFunc(callee)
		if s == nil {
			return true
		}
		for _, id := range s.ClosesIDs {
			closedIDs[id] = true
		}
		for _, j := range s.ClosesParams {
			if j >= len(call.Args) {
				continue
			}
			if obj := identObj(info, call.Args[j]); obj != nil {
				if i, ok := chanParams[obj]; ok {
					closedParams[i] = true
				}
			}
		}
		return true
	})
	for i := range closedParams {
		sum.ClosesParams = append(sum.ClosesParams, i)
	}
	sort.Ints(sum.ClosesParams)
	for id := range closedIDs {
		sum.ClosesIDs = append(sum.ClosesIDs, id)
	}
	sort.Strings(sum.ClosesIDs)
	return sum
}

// calleeBlocks reports whether call's static callee carries a trusted
// Blocks summary. Blocks facts from outside the current import tree are
// ignored (see sameTree): close facts transfer fine across that line, but
// "blocks" inferred from the runtime's own scheduler channels does not.
func (cm *chanMisuse) calleeBlocks(call *ast.CallExpr) bool {
	callee := callgraph.StaticCallee(cm.pass.TypesInfo, call)
	if callee == nil || !sameTree(callee.Pkg(), cm.pass.Pkg) {
		return false
	}
	s := cm.forFunc(callee)
	return s != nil && s.Blocks
}

func (cm *chanMisuse) forFunc(fn *types.Func) *ChanSummary {
	if fn == nil {
		return nil
	}
	if cm.model.Graph().Nodes[fn] != nil {
		return cm.local[fn]
	}
	if s, ok := cm.imported[fn]; ok {
		return s
	}
	if cm.missing[fn] {
		return nil
	}
	var s ChanSummary
	if cm.pass.ImportFact(chanNS, fn, &s) {
		cm.imported[fn] = &s
		return &s
	}
	cm.missing[fn] = true
	return nil
}

// known reports whether fn's channel behavior is visible to the analysis:
// a package-local function always is, an imported one only if it exported
// a fact (no fact means no channel behavior worth recording — which for
// close-evidence purposes still counts as known-not-closing when the
// function is local or published any fact namespace... it did not, so
// treat silence from another package as known only when the function is
// local).
func (cm *chanMisuse) known(fn *types.Func) bool {
	if fn == nil {
		return false
	}
	if cm.model.Graph().Nodes[fn] != nil {
		return true
	}
	return cm.forFunc(fn) != nil
}

// checkUnderLock reports channel operations that may block while a mutex
// is held, using the summary-aware per-chain lock dataflow.
func (cm *chanMisuse) checkUnderLock(decl *ast.FuncDecl, body *ast.BlockStmt) {
	g := cfg.Build(body)
	if g.Unanalyzable {
		return
	}
	chains := cm.model.Chains(body)
	if decl != nil {
		for _, r := range cm.model.Requires(decl) {
			seen := false
			for _, c := range chains {
				if c.Text == r.Text {
					seen = true
					break
				}
			}
			if !seen {
				chains = append(chains, r)
			}
		}
	}
	if len(chains) == 0 {
		return
	}
	states := make(map[string]map[*cfg.Block]cfg.Set, len(chains))
	for _, c := range chains {
		states[c.Text] = cm.model.States(g, decl, c.Text)
	}
	for _, blk := range g.Blocks {
		if _, ok := states[chains[0].Text][blk]; !ok {
			continue
		}
		cur := make(map[string]cfg.Set, len(states))
		for text, sets := range states {
			cur[text] = sets[blk]
		}
		for _, s := range blk.Stmts {
			var held string
			for _, c := range chains {
				set := cur[c.Text]
				if set.Has(raceguard.StateLocked) || set.Has(raceguard.StateRLocked) {
					if held == "" || c.Text < held {
						held = c.Text
					}
				}
			}
			if held != "" {
				cm.reportBlocking(s, held)
			}
			for text := range cur {
				cur[text] = cm.model.Fold(text, s, cur[text])
			}
		}
	}
}

// reportBlocking scans one statement reached with mutex `held` held and
// reports each operation in it that may block on channel traffic.
func (cm *chanMisuse) reportBlocking(s ast.Stmt, held string) {
	info := cm.pass.TypesInfo
	ast.Inspect(s, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit, *ast.GoStmt, *ast.DeferStmt:
			return false
		case *ast.SelectStmt:
			if selectHasDefault(n) {
				return false
			}
		case *ast.SendStmt:
			cm.pass.Reportf(n.Arrow, "send-under-lock",
				"channel send while %s is held blocks every other user of the mutex until a receiver is ready; move it outside the critical section", held)
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				cm.pass.Reportf(n.OpPos, "recv-under-lock",
					"channel receive while %s is held blocks every other user of the mutex until a sender is ready; move it outside the critical section", held)
			}
		case *ast.CallExpr:
			if isWaitGroupWait(info, n) {
				cm.pass.Reportf(n.Pos(), "wait-under-lock",
					"sync.WaitGroup.Wait while %s is held stalls the mutex until every worker finishes — and deadlocks if a worker needs it; wait outside the critical section", held)
			} else if cm.calleeBlocks(n) {
				callee := callgraph.StaticCallee(info, n)
				cm.pass.Reportf(n.Pos(), "call-under-lock",
					"call to %s while %s is held may block on channel traffic with the mutex held; call it outside the critical section", callee.Name(), held)
			}
		}
		return true
	})
}

// checkChannels runs the per-body channel-lifecycle checks: ranges whose
// channel nothing closes, and sends no goroutine can ever receive.
func (cm *chanMisuse) checkChannels(body *ast.BlockStmt) {
	info := cm.pass.TypesInfo
	inspectShallow(body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if !isChanType(info.TypeOf(n.X)) {
				return
			}
			switch x := ast.Unparen(n.X).(type) {
			case *ast.Ident:
				cm.checkLocalRange(body, n, x)
			case *ast.SelectorExpr:
				if id, ok := canonicalID(rootOf(info, x), types.ExprString(x)); ok && !cm.pkgCloses[id] {
					cm.pass.Reportf(n.Pos(), "unclosed-range",
						"range over %s may never terminate: nothing in this package or its summarized callees closes it; close the channel when the senders are done (or waive with a reason if it is closed elsewhere)", displayID(id))
				}
			}
		case *ast.SendStmt:
			cm.checkSelfReceive(body, n)
		}
	})
}

// checkLocalRange reports a range over a locally-made channel with no
// reachable close. Channels that escape — returned, stored, captured by a
// value we cannot follow, or passed to a function without a summary — get
// the benefit of the doubt.
func (cm *chanMisuse) checkLocalRange(body *ast.BlockStmt, rs *ast.RangeStmt, x *ast.Ident) {
	info := cm.pass.TypesInfo
	obj := info.Uses[x]
	if obj == nil {
		return
	}
	u := cm.scanUses(body, obj)
	if u.defCall == nil || u.closed || u.escapes {
		return
	}
	d := analysis.Diagnostic{
		Pos:      rs.Pos(),
		Category: "unclosed-range",
		Message: "range over " + obj.Name() + " never terminates: no reachable code closes the channel, so the loop blocks forever once the senders go quiet; close(" +
			obj.Name() + ") when the last send is done",
	}
	if lit := u.soleGoSender(); lit != nil {
		d.SuggestedFixes = []analysis.SuggestedFix{{
			Message: "close " + obj.Name() + " when the sending goroutine finishes",
			Edits: []analysis.TextEdit{{
				Pos:     lit.Body.Lbrace + 1,
				End:     lit.Body.Lbrace + 1,
				NewText: "\n\tdefer close(" + obj.Name() + ")",
			}},
		}}
	}
	cm.pass.Report(d)
}

// checkSelfReceive reports a send that is guaranteed to block forever: an
// unbuffered channel that never escapes the goroutine performing the
// send, so no receiver can ever exist.
func (cm *chanMisuse) checkSelfReceive(body *ast.BlockStmt, send *ast.SendStmt) {
	info := cm.pass.TypesInfo
	obj := identObj(info, send.Chan)
	if obj == nil {
		return
	}
	u := cm.scanUses(body, obj)
	if u.defCall == nil || len(u.defCall.Args) != 1 {
		return
	}
	if u.escapes || u.capturedByLit || u.receives || u.selectSends {
		return
	}
	cm.pass.Reportf(send.Arrow, "self-receive",
		"send on %s always blocks: the unbuffered channel never leaves this goroutine, so no receiver can exist", obj.Name())
}

// chanUse is what scanUses learned about one channel variable within one
// function body.
type chanUse struct {
	defCall       *ast.CallExpr // the make(chan ...) defining it here, if any
	closed        bool
	escapes       bool
	receives      bool
	capturedByLit bool
	selectSends   bool          // some send sits inside a select (may have other ready cases)
	sendLits      []*ast.FuncLit // innermost literal of each plain send; nil entry = send in this body
	goLits        map[*ast.FuncLit]bool
}

// soleGoSender returns the single go-spawned function literal performing
// every send on the channel, or nil — the shape the mechanical
// `defer close` fix requires.
func (u *chanUse) soleGoSender() *ast.FuncLit {
	if len(u.sendLits) == 0 {
		return nil
	}
	first := u.sendLits[0]
	if first == nil || !u.goLits[first] {
		return nil
	}
	for _, lit := range u.sendLits[1:] {
		if lit != first {
			return nil
		}
	}
	return first
}

// scanUses classifies every use of obj in body: where it is defined, who
// closes it, whether it escapes analysis, and where the sends are.
func (cm *chanMisuse) scanUses(body *ast.BlockStmt, obj types.Object) *chanUse {
	info := cm.pass.TypesInfo
	u := &chanUse{goLits: make(map[*ast.FuncLit]bool)}
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		if g, ok := n.(*ast.GoStmt); ok {
			if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
				u.goLits[lit] = true
			}
		}
		id, ok := n.(*ast.Ident)
		if !ok || (info.Uses[id] != obj && info.Defs[id] != obj) {
			return true
		}
		cm.classifyUse(u, stack, id)
		return true
	})
	return u
}

func (cm *chanMisuse) classifyUse(u *chanUse, stack []ast.Node, id *ast.Ident) {
	info := cm.pass.TypesInfo
	var inLit *ast.FuncLit
	inSelect := false
	for i := len(stack) - 2; i >= 0; i-- {
		switch anc := stack[i].(type) {
		case *ast.FuncLit:
			if inLit == nil {
				inLit = anc
			}
		case *ast.SelectStmt:
			inSelect = true
		}
	}
	if inLit != nil {
		u.capturedByLit = true
	}
	parent := stack[len(stack)-2]
	switch p := parent.(type) {
	case *ast.SendStmt:
		if p.Chan == id {
			u.sendLits = append(u.sendLits, inLit)
			if inSelect {
				u.selectSends = true
			}
		} else {
			u.escapes = true
		}
	case *ast.UnaryExpr:
		if p.Op == token.ARROW {
			u.receives = true
		} else {
			u.escapes = true
		}
	case *ast.RangeStmt:
		if p.X != id {
			u.escapes = true
		} else {
			u.receives = true
		}
	case *ast.CallExpr:
		cm.classifyCallUse(u, p, id)
	case *ast.AssignStmt:
		onLeft := false
		for _, lhs := range p.Lhs {
			if lhs == id {
				onLeft = true
			}
		}
		if !onLeft {
			u.escapes = true
			return
		}
		if call := makeChanCall(info, p, id); call != nil && u.defCall == nil {
			u.defCall = call
		} else {
			// Reassigned, or assigned from something other than a fresh
			// make: aliasing we do not follow.
			u.escapes = true
		}
	case *ast.ValueSpec:
		if call := makeChanSpec(info, p, id); call != nil && u.defCall == nil {
			u.defCall = call
		} else {
			u.escapes = true
		}
	default:
		u.escapes = true
	}
}

// classifyCallUse handles obj appearing as a call argument: builtin
// close/len/cap are understood, a summarized callee that closes the
// parameter counts as a close, anything opaque is an escape.
func (cm *chanMisuse) classifyCallUse(u *chanUse, call *ast.CallExpr, id *ast.Ident) {
	info := cm.pass.TypesInfo
	argIndex := -1
	for i, a := range call.Args {
		if ast.Unparen(a) == id {
			argIndex = i
		}
	}
	if argIndex < 0 {
		u.escapes = true
		return
	}
	if isBuiltinClose(info, call) {
		u.closed = true
		return
	}
	if fun, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[fun].(*types.Builtin); ok {
			if name := b.Name(); name == "len" || name == "cap" {
				return
			}
			u.escapes = true
			return
		}
	}
	callee := callgraph.StaticCallee(info, call)
	if callee == nil || !cm.known(callee) {
		u.escapes = true
		return
	}
	if s := cm.forFunc(callee); s != nil {
		for _, j := range s.ClosesParams {
			if j == argIndex {
				u.closed = true
				return
			}
		}
	}
	// A summarized callee that does not close the parameter is evidence
	// the channel's lifecycle ends elsewhere — the range is on its own.
}

func makeChanCall(info *types.Info, assign *ast.AssignStmt, id *ast.Ident) *ast.CallExpr {
	if len(assign.Lhs) != len(assign.Rhs) {
		return nil
	}
	for i, lhs := range assign.Lhs {
		if lhs == id {
			return asMakeChan(info, assign.Rhs[i])
		}
	}
	return nil
}

func makeChanSpec(info *types.Info, spec *ast.ValueSpec, id *ast.Ident) *ast.CallExpr {
	if len(spec.Names) != len(spec.Values) {
		return nil
	}
	for i, name := range spec.Names {
		if name == id {
			return asMakeChan(info, spec.Values[i])
		}
	}
	return nil
}

func asMakeChan(info *types.Info, e ast.Expr) *ast.CallExpr {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return nil
	}
	fun, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return nil
	}
	if b, ok := info.Uses[fun].(*types.Builtin); !ok || b.Name() != "make" {
		return nil
	}
	if !isChanType(info.TypeOf(call)) {
		return nil
	}
	return call
}

func isChanType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

func isBuiltinClose(info *types.Info, call *ast.CallExpr) bool {
	fun, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[fun].(*types.Builtin)
	return ok && b.Name() == "close"
}

func isWaitGroupWait(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Wait" {
		return false
	}
	t := info.TypeOf(sel.X)
	return t != nil && analysis.IsNamed(t, "sync", "WaitGroup")
}

func selectHasDefault(s *ast.SelectStmt) bool {
	for _, clause := range s.Body.List {
		if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// inspectShallow walks the body without descending into function
// literals: each literal body gets its own funcBodies visit.
func inspectShallow(body *ast.BlockStmt, fn func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			fn(n)
		}
		return true
	})
}
