package liveness

import (
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
	"strings"

	"github.com/rolo-storage/rolo/internal/analysis"
	"github.com/rolo-storage/rolo/internal/analysis/callgraph"
	"github.com/rolo-storage/rolo/internal/analysis/cfg"
)

const (
	goroNS          = "goroleak"
	daemonDirective = "rolosan:daemon"
)

// A GoroSummary is the "goroleak" fact of one function: whether every
// path through it loops forever (NeverReturns), and whether it is
// declared a deliberate process-lifetime daemon.
type GoroSummary struct {
	NeverReturns bool `json:"neverReturns,omitempty"`
	Daemon       bool `json:"daemon,omitempty"`
}

// GoroLeak reports goroutines with no provable termination path. A `go`
// statement must either run a body the analysis can see terminating — a
// reachable return, a breakable or bounded loop, a select with an exit —
// or carry a `//rolosan:daemon <reason>` directive (on the go statement
// or on the spawned function's declaration) acknowledging that the
// goroutine deliberately lives for the life of the process.
var GoroLeak = &analysis.Analyzer{
	Name: "goroleak",
	Doc: `report go statements spawning goroutines with no provable termination path

A goroutine that can never terminate pins its stack, its captures, and —
in this codebase — journal segments and experiment workers, forever. The
check proves termination structurally: a function terminates if control
can fall off its end, reach a return, or panic; an unconditional for loop
with no break never does, nor does an empty select, nor a function whose
every path calls a never-returning callee (a "goroleak" fact, so the
obligation propagates from helpers to their spawners across packages).
Deliberate daemons are declared, not silenced: //rolosan:daemon <reason>
above the go statement or in the spawned function's doc comment records
why the goroutine should outlive its spawner.`,
	Run: runGoroLeak,
}

type goroLeak struct {
	pass     *analysis.Pass
	graph    *callgraph.Graph
	local    map[*types.Func]*GoroSummary
	imported map[*types.Func]*GoroSummary
	missing  map[*types.Func]bool
}

func runGoroLeak(pass *analysis.Pass) error {
	ga := &goroLeak{
		pass:     pass,
		graph:    callgraph.Build(pass.Files, pass.TypesInfo),
		local:    make(map[*types.Func]*GoroSummary),
		imported: make(map[*types.Func]*GoroSummary),
		missing:  make(map[*types.Func]bool),
	}
	for _, comp := range ga.graph.SCCs() {
		for round := 0; round <= len(comp); round++ {
			changed := false
			for _, node := range comp {
				sum := ga.summarize(node)
				if !reflect.DeepEqual(ga.local[node.Func], sum) {
					changed = true
				}
				ga.local[node.Func] = sum
			}
			if !changed {
				break
			}
		}
	}
	for _, node := range ga.graph.All() {
		if s := ga.local[node.Func]; s != nil && (s.NeverReturns || s.Daemon) {
			pass.ExportFact(goroNS, node.Func, s)
		}
	}
	for _, f := range pass.Files {
		ga.checkFile(f)
	}
	return nil
}

func (ga *goroLeak) summarize(node *callgraph.Node) *GoroSummary {
	sum := &GoroSummary{}
	reason, ok := declDaemonReason(node.Decl)
	if ok && reason != "" {
		sum.Daemon = true
	}
	sum.NeverReturns = !ga.terminates(node.Decl.Body)
	return sum
}

func (ga *goroLeak) forFunc(fn *types.Func) *GoroSummary {
	if fn == nil {
		return nil
	}
	if ga.graph.Nodes[fn] != nil {
		return ga.local[fn]
	}
	if s, ok := ga.imported[fn]; ok {
		return s
	}
	if ga.missing[fn] {
		return nil
	}
	var s GoroSummary
	if ga.pass.ImportFact(goroNS, fn, &s) {
		ga.imported[fn] = &s
		return &s
	}
	ga.missing[fn] = true
	return nil
}

// terminates reports whether control entering the body can ever leave the
// function: fall off the end, hit a return, or panic. It errs toward
// termination — anything it cannot model (labeled loops, goto) gets the
// benefit of the doubt — so every report means "no exit path exists at
// all".
func (ga *goroLeak) terminates(body *ast.BlockStmt) bool {
	t := &termWalk{ga: ga}
	return t.block(body.List) || t.sawExit
}

type termWalk struct {
	ga      *goroLeak
	sawExit bool // a return or panic is syntactically present (reachably or not, the doubt goes to termination)
}

// block folds completion over a statement sequence: the sequence
// completes only if every statement lets control continue past it. All
// statements are visited regardless, so exits in code after an infinite
// loop still register as doubt.
func (t *termWalk) block(list []ast.Stmt) bool {
	completes := true
	for _, s := range list {
		completes = t.stmt(s) && completes
	}
	return completes
}

// stmt reports whether control can continue past s.
func (t *termWalk) stmt(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt:
		t.sawExit = true
		return false
	case *ast.BlockStmt:
		return t.block(s.List)
	case *ast.IfStmt:
		thenDone := t.block(s.Body.List)
		elseDone := true
		if s.Else != nil {
			elseDone = t.stmt(s.Else)
		}
		return thenDone || elseDone
	case *ast.ForStmt:
		t.block(s.Body.List) // visit for exits
		if s.Cond != nil {
			return true
		}
		return hasLoopBreak(s.Body)
	case *ast.RangeStmt:
		t.block(s.Body.List)
		return true
	case *ast.SelectStmt:
		if len(s.Body.List) == 0 {
			return false
		}
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok {
				t.block(cc.Body)
			}
		}
		return true
	case *ast.SwitchStmt:
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				t.block(cc.Body)
			}
		}
		return true
	case *ast.TypeSwitchStmt:
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				t.block(cc.Body)
			}
		}
		return true
	case *ast.LabeledStmt:
		// A labeled loop may be left by a labeled break we do not track;
		// give it the benefit of the doubt, but still visit it for exits.
		t.stmt(s.Stmt)
		return true
	case *ast.BranchStmt:
		// break/continue/goto leave the sequence; whether they terminate
		// the function is the enclosing construct's question.
		return false
	case *ast.ExprStmt:
		if cfg.IsPanicStmt(s) {
			t.sawExit = true
			return false
		}
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if callee := callgraph.StaticCallee(t.ga.pass.TypesInfo, call); callee != nil {
				if sum := t.ga.forFunc(callee); sum != nil && sum.NeverReturns && !sum.Daemon {
					return false
				}
			}
		}
		return true
	default:
		return true
	}
}

// hasLoopBreak reports whether body contains an unlabeled break binding
// to this loop — not one swallowed by a nested loop, switch, or select.
func hasLoopBreak(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit, *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			return false
		case *ast.BranchStmt:
			if n.Tok == token.BREAK && n.Label == nil {
				found = true
			}
		}
		return true
	})
	return found
}

// checkFile checks every go statement in the file, however deeply nested.
func (ga *goroLeak) checkFile(f *ast.File) {
	sites, reasonless := daemonSites(ga.pass.Fset, f)
	ast.Inspect(f, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		line := ga.pass.Fset.Position(g.Pos()).Line
		bad := reasonless[line] || reasonless[line-1]
		if !bad && (sites[line] || sites[line-1]) {
			return true
		}
		leaks, what := ga.spawnLeaks(g)
		if leaks {
			ga.reportLeak(g, what, bad)
		} else if bad {
			ga.pass.Reportf(g.Pos(), "bad-directive",
				"//rolosan:daemon needs a reason: say why this goroutine should outlive its spawner")
		}
		return true
	})
	ga.checkDeclDirectives(f)
}

// spawnLeaks decides whether the go statement spawns a goroutine with no
// provable termination path, and names what runs.
func (ga *goroLeak) spawnLeaks(g *ast.GoStmt) (bool, string) {
	switch fun := ast.Unparen(g.Call.Fun).(type) {
	case *ast.FuncLit:
		return !ga.terminates(fun.Body), "its body"
	default:
		callee := callgraph.StaticCallee(ga.pass.TypesInfo, g.Call)
		if callee == nil {
			return false, ""
		}
		sum := ga.forFunc(callee)
		if sum != nil && sum.NeverReturns && !sum.Daemon {
			return true, callee.Name()
		}
		return false, ""
	}
}

func (ga *goroLeak) reportLeak(g *ast.GoStmt, what string, badDirective bool) {
	msg := "goroutine never terminates: " + what + " has no return, no breakable loop, and no completing path; " +
		"give it a stop signal (context or done channel) or declare it with //rolosan:daemon <reason>"
	if badDirective {
		msg += " (the directive above is missing its reason)"
	}
	file := ga.pass.Fset.File(g.Pos())
	var fixes []analysis.SuggestedFix
	if file != nil && !badDirective {
		lineStart := file.LineStart(ga.pass.Fset.Position(g.Pos()).Line)
		fixes = []analysis.SuggestedFix{{
			Message: "declare the goroutine a daemon (then justify the TODO)",
			Edits: []analysis.TextEdit{{
				Pos:     lineStart,
				End:     lineStart,
				NewText: "//rolosan:daemon TODO: justify this process-lifetime goroutine\n",
			}},
		}}
	}
	ga.pass.Report(analysis.Diagnostic{
		Pos:            g.Pos(),
		Category:       "unterminated",
		Message:        msg,
		SuggestedFixes: fixes,
	})
}

// checkDeclDirectives reports reasonless //rolosan:daemon directives on
// function declarations (site directives are judged at the go statement).
func (ga *goroLeak) checkDeclDirectives(f *ast.File) {
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok {
			continue
		}
		if reason, ok := declDaemonReason(fd); ok && reason == "" {
			ga.pass.Reportf(fd.Name.Pos(), "bad-directive",
				"//rolosan:daemon on %s needs a reason: say why the goroutine running it should outlive its spawner", fd.Name.Name)
		}
	}
}

// declDaemonReason extracts the daemon directive from a declaration's doc
// comment.
func declDaemonReason(decl *ast.FuncDecl) (string, bool) {
	if decl == nil || decl.Doc == nil {
		return "", false
	}
	for _, c := range decl.Doc.List {
		if rest, ok := directiveText(c, daemonDirective); ok {
			return strings.TrimSpace(rest), true
		}
	}
	return "", false
}

// daemonSites maps each line carrying a reasoned //rolosan:daemon
// directive (covering a go statement on that line or the next) and,
// separately, the lines of reasonless ones.
func daemonSites(fset *token.FileSet, f *ast.File) (sites, reasonless map[int]bool) {
	sites = make(map[int]bool)
	reasonless = make(map[int]bool)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			rest, ok := directiveText(c, daemonDirective)
			if !ok {
				continue
			}
			line := fset.Position(c.Pos()).Line
			if strings.TrimSpace(rest) == "" {
				reasonless[line] = true
			} else {
				sites[line] = true
			}
		}
	}
	return sites, reasonless
}
