// Package gorolib is a dependency fixture for goroleak: its
// never-returns and daemon facts must reach importing fixture packages.
package gorolib

// Forever spins with no exit path: a never-returns fact.
func Forever() {
	for {
		step()
	}
}

// Pump drains its channel for the life of the process, by declaration.
//
//rolosan:daemon metrics pump runs for the process lifetime
func Pump(ch chan int) {
	for {
		<-ch
	}
}

// Bounded returns once the budget is spent.
func Bounded(n int) {
	for i := 0; i < n; i++ {
		step()
	}
}

func step() {}
