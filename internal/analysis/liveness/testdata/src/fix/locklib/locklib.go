// Package locklib is a dependency fixture for lockorder: its per-function
// acquisition summaries and order edges must reach importing fixture
// packages as "lockorder" facts, and the cycle its Inner methods close
// internally must be reported here, not re-reported by importers.
package locklib

import "sync"

// Pair is a two-lock structure whose documented order is A before B.
type Pair struct {
	A, B sync.Mutex
}

// AB acquires A then B — the canonical order (edge A -> B in the fact).
func (p *Pair) AB() {
	p.A.Lock()
	p.B.Lock()
	p.B.Unlock()
	p.A.Unlock()
}

// LockA acquires A and leaves it held (an acquisition in the fact).
func (p *Pair) LockA() { p.A.Lock() }

// UnlockA releases A.
func (p *Pair) UnlockA() { p.A.Unlock() }

// Inner closes a lock-order cycle entirely inside this package: CD and DC
// disagree about the order of C and D. The cycle belongs to this
// package's report; importers that call both must stay quiet about it.
type Inner struct {
	C, D sync.Mutex
}

// CD acquires C then D.
func (i *Inner) CD() {
	i.C.Lock()
	i.D.Lock()
	i.D.Unlock()
	i.C.Unlock()
}

// DC acquires D then C.
func (i *Inner) DC() {
	i.D.Lock()
	i.C.Lock()
	i.C.Unlock()
	i.D.Unlock()
}
