package goroleak

// spawnForFix exists for the golden test: the mechanical fix declares the
// goroutine a daemon with a TODO reason to justify.
func spawnForFix() {
	go looper() // want `goroutine never terminates: looper has no return`
}

func looper() {
	for {
		tick()
	}
}
