// Package goroleak exercises the goroleak analyzer: go statements whose
// goroutines have no provable termination path — literal bodies, local
// helpers that loop forever (the obligation propagates to the spawner),
// and imported never-returns functions — plus the daemon directive in its
// reasoned, reasonless, and declaration forms.
package goroleak

import "fix/gorolib"

// spinLit spawns a literal with no exit path.
func spinLit() {
	go func() { // want `goroutine never terminates: its body has no return`
		for {
			tick()
		}
	}()
}

// workerLit checks its done channel every iteration: provably
// terminating, no finding.
func workerLit(done chan struct{}) {
	go func() {
		for {
			select {
			case <-done:
				return
			default:
			}
			tick()
		}
	}()
}

// boundedLit completes a counted loop: no finding.
func boundedLit() {
	go func() {
		for i := 0; i < 3; i++ {
			tick()
		}
	}()
}

// spin loops forever; spawning it leaks, and the leak is the spawner's.
func spin() {
	for {
		tick()
	}
}

func spawnSpin() {
	go spin() // want `goroutine never terminates: spin has no return`
}

// deep never returns because everything after its call to spin is
// unreachable: the obligation propagates two levels.
func deep() {
	spin()
}

func spawnDeep() {
	go deep() // want `goroutine never terminates: deep has no return`
}

func spawnSpinWaived() {
	go spin() //lint:allow goroleak:unterminated fixture exercises the waiver path
}

// spawnImported leaks through a cross-package fact.
func spawnImported() {
	go gorolib.Forever() // want `goroutine never terminates: Forever has no return`
}

// spawnDaemonFact is clean: gorolib.Pump declares itself a daemon.
func spawnDaemonFact(ch chan int) {
	go gorolib.Pump(ch)
}

// spawnDeclaredDaemon is clean: the site directive takes the obligation.
func spawnDeclaredDaemon() {
	//rolosan:daemon fixture daemon justified for the test lifetime
	go gorolib.Forever()
}

// spawnReasonlessDaemon carries a directive with no reason: it does not
// take the obligation, and the missing reason is called out.
func spawnReasonlessDaemon() {
	//rolosan:daemon
	go gorolib.Forever() // want `goroutine never terminates: Forever has no return, no breakable loop, and no completing path; give it a stop signal \(context or done channel\) or declare it with //rolosan:daemon <reason> \(the directive above is missing its reason\)`
}

// badDaemon declares itself a daemon without saying why.
//
//rolosan:daemon
func badDaemon() { // want `//rolosan:daemon on badDaemon needs a reason`
	for {
		tick()
	}
}

// spawnDynamic spawns through a function value: out of scope, no finding.
func spawnDynamic(fn func()) {
	go fn()
}

func tick() {}
