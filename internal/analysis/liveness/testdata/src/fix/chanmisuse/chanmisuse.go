// Package chanmisuse exercises the chanmisuse analyzer: blocking channel
// operations inside critical sections (directly, via helper-held locks,
// and via blocking callees from another package), ranges over channels
// nothing closes, and sends no goroutine can receive.
package chanmisuse

import (
	"sync"

	"fix/chanlib"
)

type box struct {
	mu sync.Mutex
	ch chan int
}

func (s *box) lock() { s.mu.Lock() }

func (s *box) unlock() { s.mu.Unlock() }

func sendUnderLock(s *box) {
	s.mu.Lock()
	s.ch <- 1 // want `channel send while s\.mu is held`
	s.mu.Unlock()
}

func sendUnderLockWaived(s *box) {
	s.mu.Lock()
	s.ch <- 1 //lint:allow chanmisuse:send-under-lock fixture exercises the waiver path
	s.mu.Unlock()
}

func recvUnderLock(s *box) int {
	s.mu.Lock()
	v := <-s.ch // want `channel receive while s\.mu is held`
	s.mu.Unlock()
	return v
}

func waitUnderLock(s *box, wg *sync.WaitGroup) {
	s.mu.Lock()
	wg.Wait() // want `sync\.WaitGroup\.Wait while s\.mu is held`
	s.mu.Unlock()
}

// helperHeldSend blocks under a lock acquired by a summarized helper.
func helperHeldSend(s *box) {
	s.lock()
	s.ch <- 1 // want `channel send while s\.mu is held`
	s.unlock()
}

// callUnderLock blocks through an imported callee whose fact says it
// blocks on channel traffic.
func callUnderLock(s *box, done chan struct{}) {
	s.mu.Lock()
	chanlib.Await(done) // want `call to Await while s\.mu is held may block`
	s.mu.Unlock()
}

// sendOutsideLock moves the send after the unlock: no finding.
func sendOutsideLock(s *box) {
	s.mu.Lock()
	s.mu.Unlock()
	s.ch <- 1
}

// closedByProducer is the healthy shape: the one sender closes the
// channel when it finishes, so the range terminates.
func closedByProducer() {
	ch := make(chan int)
	go func() {
		defer close(ch)
		for i := 0; i < 3; i++ {
			ch <- i
		}
	}()
	for v := range ch {
		work(v)
	}
}

// crossClosed relies on an imported closer: chanlib.Fill's fact says it
// closes its first parameter.
func crossClosed() {
	ch := make(chan int)
	go chanlib.Fill(ch)
	for v := range ch {
		work(v)
	}
}

// crossUnclosed hands the channel to an imported sender that never
// closes it: the range can never terminate.
func crossUnclosed() {
	ch := make(chan int)
	go chanlib.Pump(ch)
	for v := range ch { // want `range over ch never terminates`
		work(v)
	}
}

// escapedChan is returned to the caller, so its lifecycle is not ours to
// judge: no finding.
func escapedChan() chan int {
	ch := make(chan int)
	go func() {
		ch <- 1
	}()
	return ch
}

// src's channel field is closed nowhere in this package.
type src struct {
	c chan int
}

func (s *src) loop() {
	for v := range s.c { // want `range over \(chanmisuse\.src\)\.c may never terminate`
		work(v)
	}
}

func (s *src) loopWaived() {
	for v := range s.c { //lint:allow chanmisuse:unclosed-range the producer harness closes it
		work(v)
	}
}

// sink's channel field is closed by finish, so ranging over it is fine.
type sink struct {
	c chan int
}

func (s *sink) loop() {
	for v := range s.c {
		work(v)
	}
}

func (s *sink) finish() { close(s.c) }

// selfReceive sends on an unbuffered channel that never leaves this
// goroutine: guaranteed deadlock.
func selfReceive() {
	ch := make(chan int)
	ch <- 1 // want `send on ch always blocks`
}

// bufferedSend has capacity, so the send completes: no finding.
func bufferedSend() {
	ch := make(chan int, 1)
	ch <- 1
}

// receiverExists hands the channel to another goroutine: no finding.
func receiverExists() {
	ch := make(chan int)
	go func() {
		work(<-ch)
	}()
	ch <- 1
}

func work(int) {}
