package chanmisuse

// produceAndDrain ranges over a channel whose only sender is one spawned
// goroutine and which nothing closes: the mechanical fix defers the close
// at the top of that goroutine.
func produceAndDrain() {
	ch := make(chan int)
	go func() {
		for i := 0; i < 3; i++ {
			ch <- i
		}
	}()
	for v := range ch { // want `range over ch never terminates`
		work(v)
	}
}
