// Package chanlib is a dependency fixture for chanmisuse: its "blocks"
// and "closes" facts must reach importing fixture packages.
package chanlib

// Fill sends three values and closes the channel: a blocking function
// whose first parameter is eventually closed.
func Fill(ch chan int) {
	for i := 0; i < 3; i++ {
		ch <- i
	}
	close(ch)
}

// Pump sends forever and never closes: blocking, no close fact.
func Pump(ch chan int) {
	for i := 0; ; i++ {
		ch <- i
	}
}

// Await blocks until the channel yields.
func Await(done chan struct{}) {
	<-done
}
