// Package lockorder exercises the lockorder analyzer: an ABBA cycle with
// a two-edge witness path, a declared-order violation, a helper-acquired
// cycle silenced by a scoped waiver, a cross-package cycle assembled from
// imported facts, and an imported cycle that must stay suppressed.
package lockorder

import (
	"sync"

	"fix/locklib"
)

// The declared order: a before b. The ba function below violates it.
//
//rolosan:lockorder pair.a < pair.b

type pair struct {
	a, b sync.Mutex
}

func ab(p *pair) {
	p.a.Lock()
	p.b.Lock() // want `potential deadlock: lock-order cycle: \(lockorder\.pair\)\.a -> \(lockorder\.pair\)\.b at lockorder\.go:\d+; \(lockorder\.pair\)\.b -> \(lockorder\.pair\)\.a at lockorder\.go:\d+`
	p.b.Unlock()
	p.a.Unlock()
}

func ba(p *pair) {
	p.b.Lock()
	p.a.Lock() // want `acquires \(lockorder\.pair\)\.a while \(lockorder\.pair\)\.b is held at lockorder\.go:\d+, violating declared order //rolosan:lockorder pair\.a < pair\.b`
	p.a.Unlock()
	p.b.Unlock()
}

// duo closes the same kind of cycle through a lock helper: the summary of
// lockX makes x held at the y acquisition. The cycle is deliberate here,
// so the report line carries a scoped waiver.
type duo struct {
	x, y sync.Mutex
}

func (d *duo) lockX() { d.x.Lock() }

func (d *duo) xThenY() {
	d.lockX()
	d.y.Lock() //lint:allow lockorder:cycle fixture exercises the waiver path
	d.y.Unlock()
	d.x.Unlock()
}

func (d *duo) yThenX() {
	d.y.Lock()
	d.lockX()
	d.x.Unlock()
	d.y.Unlock()
}

// holder closes a cycle with locklib.Pair.A across the package boundary:
// first holds mu while AB acquires A (and B), second holds A — through
// the imported LockA summary — while acquiring mu.
type holder struct {
	mu sync.Mutex
}

func (h *holder) first(p *locklib.Pair) {
	h.mu.Lock()
	p.AB() // want `potential deadlock: lock-order cycle: \(locklib\.Pair\)\.A -> \(lockorder\.holder\)\.mu at lockorder\.go:\d+; \(lockorder\.holder\)\.mu -> \(locklib\.Pair\)\.A at locklib\.go:\d+`
	h.mu.Unlock()
}

func (h *holder) second(p *locklib.Pair) {
	p.LockA()
	h.mu.Lock()
	h.mu.Unlock()
	p.UnlockA()
}

// inner drives both halves of locklib's internal C/D cycle. The cycle is
// wholly visible to locklib and reported there; re-reporting it here
// would bury this package's own findings, so lockorder must stay quiet.
func inner(i *locklib.Inner) {
	i.CD()
	i.DC()
}

// viaGlobal orders a package-level mutex before a field class, agreeing
// with its declaration below: no finding.
//
//rolosan:lockorder regMu < pair.a
var regMu sync.Mutex

func viaGlobal(p *pair) {
	regMu.Lock()
	p.a.Lock()
	p.a.Unlock()
	regMu.Unlock()
}
