package invariantguard_test

import (
	"testing"

	"github.com/rolo-storage/rolo/internal/analysis/analysistest"
	"github.com/rolo-storage/rolo/internal/analysis/invariantguard"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, "testdata", invariantguard.Analyzer,
		"fix/guard",
	)
}
