// Package logspace is a fixture stub of the real log-space allocator:
// just enough surface for the invariantguard analyzer, which matches the
// *Space type by package-path suffix and so treats this stub exactly like
// the real thing.
package logspace

// Alloc describes one allocation.
type Alloc struct {
	Start, Len int64
	Tag        int
}

// Space mimics the append-only allocator.
type Space struct{ used int64 }

// Alloc is a mutating allocator method.
func (s *Space) Alloc(n int64, tag int) (Alloc, bool) {
	s.used += n
	return Alloc{Len: n, Tag: tag}, true
}

// ReleaseTag is a mutating allocator method.
func (s *Space) ReleaseTag(tag int) int64 { return 0 }

// Reset is a mutating allocator method.
func (s *Space) Reset() { s.used = 0 }

// Shrink is a mutating allocator method.
func (s *Space) Shrink(n int64) bool { return true }

// UsedBytes is a read-only method; calling it is always legal.
func (s *Space) UsedBytes() int64 { return s.used }
