// Package intervals is a fixture stub of the real interval-set package:
// just enough surface for the invariantguard analyzer, which matches the
// *Set type by package-path suffix and so treats this stub exactly like
// the real thing.
package intervals

// Span is a half-open range.
type Span struct{ Start, End int64 }

// Set mimics the coalescing dirty-extent set.
type Set struct{ spans []Span }

// Add is a mutating method.
func (s *Set) Add(start, end int64) { s.spans = append(s.spans, Span{start, end}) }

// Remove is a mutating method.
func (s *Set) Remove(start, end int64) {}

// Clear is a mutating method.
func (s *Set) Clear() { s.spans = s.spans[:0] }

// Total is a read-only method; calling it is always legal.
func (s *Set) Total() int64 { return 0 }

// Spans is a read-only method; calling it is always legal.
func (s *Set) Spans() []Span { return s.spans }
