package guard

// Test files corrupt bookkeeping on purpose (mutation tests prove the
// sanitizer notices), so the analyzer must stay silent here: no `want`
// on any of these calls.

func corruptForTest(c *C) {
	c.space.Alloc(8, 1)
	c.dirty[0].Add(0, 8)
	c.space.Reset()
}
