// Package guard exercises the invariantguard analyzer: a toy controller
// whose log-space and dirty-set bookkeeping must flow through the
// rolosan:audited helpers below.
package guard

import (
	"github.com/rolo-storage/rolo/internal/intervals"
	"github.com/rolo-storage/rolo/internal/logspace"
)

// C is a toy controller with sanitizer-audited bookkeeping.
type C struct {
	space  *logspace.Space
	spaces []*logspace.Space
	dirty  []intervals.Set
}

// logAlloc is the audited allocation path.
//
// rolosan:audited
func (c *C) logAlloc(n int64, tag int) (logspace.Alloc, bool) {
	return c.space.Alloc(n, tag)
}

// releaseTag is the audited release path.
//
// rolosan:audited — helpers may touch several spaces.
func (c *C) releaseTag(tag int) {
	for _, sp := range c.spaces {
		sp.ReleaseTag(tag)
	}
}

// markDirty is the audited dirty-set mutation path; closures inside an
// audited helper are covered by the helper's marker.
//
// rolosan:audited
func (c *C) markDirty(p int, start, end int64) {
	defer func() { c.dirty[p].Add(start, end) }()
}

// submitGood routes every mutation through the audited helpers and reads
// freely.
func (c *C) submitGood(n int64) {
	if _, ok := c.logAlloc(n, 1); !ok {
		c.releaseTag(1)
	}
	_ = c.space.UsedBytes()
	_ = c.dirty[0].Total()
}

// submitBad bypasses the helpers.
func (c *C) submitBad(n int64) {
	c.space.Alloc(n, 1)       // want `logspace\.Space\.Alloc outside an audited helper`
	c.spaces[0].ReleaseTag(1) // want `logspace\.Space\.ReleaseTag outside an audited helper`
	c.space.Reset()           // want `logspace\.Space\.Reset outside an audited helper`
	c.space.Shrink(n)         // want `logspace\.Space\.Shrink outside an audited helper`
}

// touchDirty mutates field-rooted sets directly.
func (c *C) touchDirty(p int) {
	c.dirty[p].Add(0, 8)    // want `c\.dirty\[p\]\.Add mutates shared dirty-set bookkeeping outside an audited helper`
	c.dirty[p].Remove(0, 8) // want `c\.dirty\[p\]\.Remove mutates shared dirty-set bookkeeping`
	c.dirty[p].Clear()      // want `c\.dirty\[p\]\.Clear mutates shared dirty-set bookkeeping`
}

// scratch builds a purely local work set, which is exempt: only shared
// controller bookkeeping is audited.
func (c *C) scratch() int64 {
	work := &intervals.Set{}
	work.Add(0, 64)
	work.Remove(8, 16)
	work.Clear()
	return work.Total()
}

// allowed is a documented exception.
func (c *C) allowed() {
	//lint:allow invariantguard:unaudited rebuild discards the log wholesale by design
	c.space.Reset()
}

// nested flags calls inside closures of unaudited functions too.
func (c *C) nested() {
	f := func() {
		c.space.Reset() // want `logspace\.Space\.Reset outside an audited helper`
	}
	f()
}
