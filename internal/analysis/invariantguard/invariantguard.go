// Package invariantguard enforces the audited-mutation-helper discipline
// the RoloSan sanitizer depends on: in packages that declare helpers
// marked `rolosan:audited` in their doc comment, every mutation of shared
// log-space or dirty-set bookkeeping must go through such a helper.
//
// The sanitizer maintains a shadow ledger of expected log-space contents,
// fed exclusively by the audited helpers; a controller that calls
// logspace.Space.Alloc (or ReleaseTag, Reset, Shrink) directly mutates
// the allocator behind the ledger's back, and the very next sweep reports
// a false "conservation" violation — or worse, a real corruption goes
// unnoticed because the ledger was corrupted in the same way. This
// analyzer turns that runtime failure mode into a compile-time finding.
//
// Two families of call are checked outside audited helpers:
//
//   - any call to a mutating logspace.Space method (Alloc, ReleaseTag,
//     Reset, Shrink) — allocators are always shared state;
//   - calls to mutating intervals.Set methods (Add, Remove, Clear) whose
//     receiver is rooted at a struct field (e.dirty[p].Add(...)): those
//     sets are controller bookkeeping the sanitizer snapshots. Purely
//     local sets (work := &intervals.Set{}; work.Add(...)) are scratch
//     state and exempt.
//
// Packages with no `rolosan:audited` helper are out of scope (the
// discipline does not apply), as are _test.go files (tests corrupt state
// on purpose to prove the sanitizer notices). A local alias of a field
// set (s := &e.dirty[p]; s.Add(...)) escapes the receiver-root analysis;
// the convention is not to create such aliases in controller code.
package invariantguard

import (
	"go/ast"
	"go/types"
	"strings"

	"github.com/rolo-storage/rolo/internal/analysis"
)

// Analyzer is the invariantguard check.
var Analyzer = &analysis.Analyzer{
	Name: "invariantguard",
	Doc:  "flag log-space and dirty-set mutations outside rolosan:audited helpers",
	Run:  run,
}

// Marker is the doc-comment marker identifying an audited helper.
const Marker = "rolosan:audited"

var spaceMutators = map[string]bool{
	"Alloc": true, "ReleaseTag": true, "Reset": true, "Shrink": true,
}

var setMutators = map[string]bool{
	"Add": true, "Remove": true, "Clear": true,
}

func run(pass *analysis.Pass) error {
	audited := map[*types.Func]bool{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			if !hasMarker(fd.Doc) {
				continue
			}
			if obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func); obj != nil {
				audited[obj] = true
			}
		}
	}
	if len(audited) == 0 {
		return nil // discipline not in force in this package
	}

	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func); obj != nil && audited[obj] {
				continue
			}
			checkBody(pass, fd.Body)
		}
	}
	return nil
}

func hasMarker(doc *ast.CommentGroup) bool {
	for _, c := range doc.List {
		line := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if line == Marker || strings.HasPrefix(line, Marker+" ") {
			return true
		}
	}
	return false
}

func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysis.CalleeFunc(pass.TypesInfo, call)
		if fn == nil {
			return true
		}
		sig, _ := fn.Type().(*types.Signature)
		if sig == nil || sig.Recv() == nil {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		recv := sig.Recv().Type()
		switch {
		case spaceMutators[fn.Name()] && analysis.IsNamed(recv, "internal/logspace", "Space"):
			pass.Reportf(call.Pos(), "unaudited",
				"logspace.Space.%s outside an audited helper: the sanitizer ledger cannot see this mutation; route it through a rolosan:audited helper",
				fn.Name())
		case setMutators[fn.Name()] && analysis.IsNamed(recv, "internal/intervals", "Set") &&
			fieldRooted(pass.TypesInfo, sel.X):
			pass.Reportf(call.Pos(), "unaudited",
				"%s.%s mutates shared dirty-set bookkeeping outside an audited helper; route it through a rolosan:audited helper",
				types.ExprString(ast.Unparen(sel.X)), fn.Name())
		}
		return true
	})
}

// fieldRooted reports whether the receiver expression reaches through a
// struct field — shared controller state — rather than a purely local
// variable. Unrecognized shapes count as field-rooted (conservative).
func fieldRooted(info *types.Info, expr ast.Expr) bool {
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.Ident:
			return false
		case *ast.SelectorExpr:
			if s, ok := info.Selections[e]; ok && s.Kind() == types.FieldVal {
				return true
			}
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.UnaryExpr:
			expr = e.X
		default:
			return true
		}
	}
}
