package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/importer"
	"go/token"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// listPackage is the subset of `go list -json` output the standalone
// driver consumes.
type listPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Incomplete bool
}

// StandaloneOptions selects the standalone driver's output modes.
type StandaloneOptions struct {
	// Fix applies each finding's first suggested fix in place (gofmt-
	// formatted), reporting what was fixed and which fixes were skipped
	// because they overlap an earlier finding's fix; only findings
	// without an applied fix count toward the exit code.
	Fix bool
	// Diff turns Fix into a dry run: instead of rewriting files, print
	// a unified diff of what Fix would change. The tree is untouched
	// and the exit code is computed as if the fixes had been applied.
	Diff bool
	// SARIF, when non-nil, receives a SARIF 2.1.0 report of the run.
	SARIF io.Writer
	// SrcRoot anchors the SARIF report's relative artifact URIs;
	// defaults to the working directory.
	SrcRoot string
	// Allows switches the run into waiver-audit mode: instead of
	// findings, print every //lint:allow directive in the target
	// packages with its rule, live/stale status, and reason, and exit 2
	// if any waiver is stale or inert — so a CI audit stage fails the
	// moment a waiver outlives the finding it suppressed. The lintallow
	// meta-check reports the same conditions as findings inside the
	// normal gate; this mode is the standalone audit of the waiver
	// inventory.
	Allows bool
}

// RunStandalone loads the packages matching the go list patterns and
// applies the analyzers, printing findings to w. It shells out to the go
// command, so it must run inside a module. Test files are not loaded in
// this mode — the `go vet -vettool` path (RunUnitchecker) covers those —
// but it needs no prior go vet plumbing, which makes it the convenient
// local iteration loop and the host of the -fix and -sarif modes.
//
// The load is shared across the whole invocation: one `go list -deps
// -export` walk enumerates targets and dependencies together, and a
// single FileSet and export-data importer serve every package, so each
// dependency's export data is parsed once per run rather than once per
// target. Dependencies inside the module are analyzed first (their
// findings discarded) so their facts reach the targets, mirroring the
// vetx transport of the unitchecker.
//
// The exit-code convention matches RunUnitchecker: 0 clean, 1 driver
// error, 2 findings.
func RunStandalone(patterns []string, analyzers []*Analyzer, w io.Writer, opts StandaloneOptions) int {
	findings, allows, err := analyzePatterns(patterns, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rololint: %v\n", err)
		return 1
	}
	if opts.Allows {
		bad := 0
		for _, r := range allows {
			status := "stale (suppresses nothing)"
			switch {
			case r.Hits == 1:
				status = "live (suppresses 1 finding)"
			case r.Hits > 1:
				status = fmt.Sprintf("live (suppresses %d findings)", r.Hits)
			case r.Reason == "":
				status = "inert (no reason given)"
			}
			if r.Hits == 0 {
				bad++
			}
			reason := r.Reason
			if reason == "" {
				reason = "<none>"
			}
			fmt.Fprintf(w, "%s:%d: lint:allow %s — %s — reason: %s\n",
				r.Pos.Filename, r.Pos.Line, r.Rule, status, reason)
		}
		if bad > 0 {
			fmt.Fprintf(w, "%d stale or inert waiver(s): remove them or restore their reasons\n", bad)
			return 2
		}
		return 0
	}
	if opts.SARIF != nil {
		root := opts.SrcRoot
		if root == "" {
			root, _ = os.Getwd()
		}
		if err := WriteSARIF(opts.SARIF, SortAnalyzers(analyzers), findings, root); err != nil {
			fmt.Fprintf(os.Stderr, "rololint: sarif: %v\n", err)
			return 1
		}
	}
	if opts.Fix {
		var remaining []Finding
		var applied []AppliedFix
		var skipped []SkippedFix
		var ferr error
		if opts.Diff {
			var diff string
			remaining, applied, skipped, diff, ferr = PreviewFixes(findings)
			if diff != "" {
				fmt.Fprint(w, diff)
			}
		} else {
			remaining, applied, skipped, ferr = ApplyFixes(findings)
		}
		verb := "fixed"
		if opts.Diff {
			verb = "would fix"
		}
		for _, a := range applied {
			fmt.Fprintf(w, "%s: %s: %s\n", a.Finding.Pos, verb, a.Message)
		}
		for _, s := range skipped {
			fmt.Fprintf(w, "%s: fix skipped (edits overlap an earlier finding's fix; rerun -fix after applying): %s\n",
				s.Finding.Pos, s.Message)
		}
		if ferr != nil {
			fmt.Fprintf(os.Stderr, "rololint: %v\n", ferr)
			return 1
		}
		findings = remaining
	}
	for _, f := range findings {
		fmt.Fprintf(w, "%s: %s\n", f.Pos, f.Message)
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}

func analyzePatterns(patterns []string, analyzers []*Analyzer) ([]Finding, []AllowRecord, error) {
	// One walk over the dependency closure: -deps emits every package
	// after all of its dependencies (the topological order the fact
	// propagation needs) and marks non-target packages DepOnly; -export
	// populates .Export from the build cache, compiling as needed.
	pkgs, err := goList(append([]string{"-deps", "-export"}, patterns...))
	if err != nil {
		return nil, nil, err
	}
	exports := make(map[string]string)
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}

	// One FileSet and one export-data importer for the whole run; the
	// gc importer caches by import path, so each dependency's export
	// data is read and materialized at most once.
	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	facts := make(Facts)
	var all []Finding
	var allows []AllowRecord
	for _, p := range pkgs {
		if p.Standard || len(p.GoFiles) == 0 || IsFixturePath(p.Dir) {
			continue
		}
		files := make([]string, len(p.GoFiles))
		for i, name := range p.GoFiles {
			files[i] = filepath.Join(p.Dir, name)
		}
		unit, err := TypecheckFiles(fset, p.ImportPath, files, imp, "")
		if err != nil {
			return nil, nil, err
		}
		findings, exported, records, err := RunAnalyzersAudit(unit, analyzers, facts)
		if err != nil {
			return nil, nil, err
		}
		for k, v := range exported {
			facts[k] = v
		}
		if !p.DepOnly {
			all = append(all, findings...)
			allows = append(allows, records...)
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Pos.Column < b.Pos.Column
	})
	sort.Slice(allows, func(i, j int) bool {
		a, b := allows[i], allows[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		return a.Pos.Line < b.Pos.Line
	})
	return all, allows, nil
}

// goList runs `go list -json` with the given extra arguments and decodes
// the package stream.
func goList(args []string) ([]listPackage, error) {
	cmd := exec.Command("go", append([]string{"list", "-json"}, args...)...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	var pkgs []listPackage
	dec := json.NewDecoder(&stdout)
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}
