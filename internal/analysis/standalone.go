package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/importer"
	"go/token"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// listPackage is the subset of `go list -json` output the standalone
// driver consumes.
type listPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	Incomplete bool
}

// RunStandalone loads the packages matching the go list patterns (with
// their dependencies' export data) and applies the analyzers, printing
// findings to w. It shells out to the go command, so it must run inside a
// module. Test files are not loaded in this mode — the `go vet -vettool`
// path (RunUnitchecker) covers those — but it needs no prior go vet
// plumbing, which makes it the convenient local iteration loop.
// The exit-code convention matches RunUnitchecker.
func RunStandalone(patterns []string, analyzers []*Analyzer, w io.Writer) int {
	findings, err := analyzePatterns(patterns, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rololint: %v\n", err)
		return 1
	}
	for _, f := range findings {
		fmt.Fprintf(w, "%s: %s\n", f.Pos, f.Message)
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}

func analyzePatterns(patterns []string, analyzers []*Analyzer) ([]Finding, error) {
	// One walk over the dependency closure gives export data for every
	// import; -export populates .Export from the build cache, compiling
	// as needed.
	deps, err := goList(append([]string{"-deps", "-export"}, patterns...))
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string)
	for _, p := range deps {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}

	targets, err := goList(patterns)
	if err != nil {
		return nil, err
	}
	var all []Finding
	for _, p := range targets {
		if p.Standard || len(p.GoFiles) == 0 || IsFixturePath(p.Dir) {
			continue
		}
		fset := token.NewFileSet()
		lookup := func(path string) (io.ReadCloser, error) {
			file, ok := exports[path]
			if !ok {
				return nil, fmt.Errorf("no export data for %q", path)
			}
			return os.Open(file)
		}
		files := make([]string, len(p.GoFiles))
		for i, name := range p.GoFiles {
			files[i] = filepath.Join(p.Dir, name)
		}
		unit, err := TypecheckFiles(fset, p.ImportPath, files,
			importer.ForCompiler(fset, "gc", lookup), "")
		if err != nil {
			return nil, err
		}
		findings, err := RunAnalyzers(unit, analyzers)
		if err != nil {
			return nil, err
		}
		all = append(all, findings...)
	}
	return all, nil
}

// goList runs `go list -json` with the given extra arguments and decodes
// the package stream.
func goList(args []string) ([]listPackage, error) {
	cmd := exec.Command("go", append([]string{"list", "-json"}, args...)...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	var pkgs []listPackage
	dec := json.NewDecoder(&stdout)
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}
