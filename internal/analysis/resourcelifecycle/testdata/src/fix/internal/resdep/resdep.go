// Package resdep is a dependency fixture for resourcelifecycle: its
// annotated resource type and helper summaries (a closer and a borrower)
// must reach importing fixture packages as facts.
package resdep

import "os"

// Handle owns an open file; holders must Close it.
//
//rolosan:resource
type Handle struct {
	f *os.File
}

// OpenHandle opens path and hands the obligation to the caller.
func OpenHandle(path string) (*Handle, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	return &Handle{f: f}, nil
}

// Close releases the handle.
func (h *Handle) Close() error { return h.f.Close() }

// Ping touches the handle without consuming it.
func (h *Handle) Ping() {}

// Finish closes its argument on the caller's behalf (summary: closes).
func Finish(h *Handle) error { return h.Close() }

// Touch only borrows its argument (summary: borrows).
func Touch(h *Handle) { h.Ping() }
