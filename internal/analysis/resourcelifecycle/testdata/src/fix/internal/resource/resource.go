// Package resource exercises the resourcelifecycle analyzer: leaks on
// early-return paths, double closes, dropped Close errors (with the `_ =`
// fix), obligations flowing through summarized helpers, and cross-package
// tracking of an annotated resource type via facts.
package resource

import (
	"bufio"
	"compress/gzip"
	"io"
	"os"

	"fix/internal/resdep"
)

// cleanChecked closes on every path; the error check prunes the nil path.
func cleanChecked(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	return f.Close()
}

// cleanDefer discharges the obligation with a deferred closure.
func cleanDefer(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer func() { _ = f.Close() }()
	_, err = io.ReadAll(f)
	return err
}

// leakOnEarlyReturn leaks f when io.Copy fails: the second err check is
// about the copy, not the constructor, so it must not prune the tracking.
func leakOnEarlyReturn(path string) (int64, error) {
	f, err := os.Open(path) // want `\*os\.File returned by os\.Open is not closed on every path`
	if err != nil {
		return 0, err
	}
	n, err := io.Copy(io.Discard, f)
	if err != nil {
		return 0, err
	}
	return n, f.Close()
}

func doubleClose(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	_ = f.Close()
	return f.Close() // want `f may already be closed here \(double close\)`
}

// discard is summarized as closing its parameter.
func discard(f *os.File) {
	_ = f.Close()
}

func closeThroughHelper(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	discard(f)
	return nil
}

// readAll is summarized as borrowing its parameter: the obligation stays
// with the caller.
func readAll(f *os.File) ([]byte, error) {
	return io.ReadAll(f)
}

func leakThroughBorrow(path string) ([]byte, error) {
	f, err := os.Open(path) // want `\*os\.File returned by os\.Open is not closed on every path`
	if err != nil {
		return nil, err
	}
	return readAll(f)
}

// openLog hands the obligation to its caller: returning the resource is
// an ownership transfer, not a leak.
func openLog(dir string) (*os.File, error) {
	f, err := os.Create(dir + "/log")
	if err != nil {
		return nil, err
	}
	return f, nil
}

// wrapperLeak is born through the in-package name-gated constructor.
func wrapperLeak(dir string) error {
	f, err := openLog(dir) // want `\*os\.File returned by resource\.openLog is not closed on every path`
	if err != nil {
		return err
	}
	_, err = f.WriteString("x")
	return err
}

func compressLeak(dst io.Writer, data []byte) error {
	zw := gzip.NewWriter(dst) // want `\*gzip\.Writer returned by gzip\.NewWriter is not closed on every path`
	if _, err := zw.Write(data); err != nil {
		return err
	}
	return zw.Close()
}

func compressClean(dst io.Writer, data []byte) error {
	zw := gzip.NewWriter(dst)
	if _, err := zw.Write(data); err != nil {
		_ = zw.Close()
		return err
	}
	return zw.Close()
}

func droppedClose(f *os.File) {
	f.Close() // want `call to \(\*os\.File\)\.Close drops its error; handle it, return it, or discard explicitly`
}

func deferredDrop(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close() // want `deferred call to \(\*os\.File\)\.Close drops its error`
	return io.ReadAll(f)
}

func allowedDrop(f *os.File) {
	f.Close() //lint:allow resourcelifecycle:dropped-error best-effort cleanup on a read-only file
}

func allowedLeak(path string) (io.Reader, error) {
	f, err := os.Open(path) //lint:allow resourcelifecycle:leak the returned reader keeps the file alive for the caller
	if err != nil {
		return nil, err
	}
	return bufio.NewReader(f), nil
}

// depLeak tracks an annotated cross-package resource: resdep.Touch only
// borrows (per its exported summary), so the handle still leaks.
func depLeak(path string) error {
	h, err := resdep.OpenHandle(path) // want `\*resdep\.Handle returned by resdep\.OpenHandle is not closed on every path`
	if err != nil {
		return err
	}
	resdep.Touch(h)
	return nil
}

// depClean discharges the obligation through resdep.Finish (summary:
// closes).
func depClean(path string) error {
	h, err := resdep.OpenHandle(path)
	if err != nil {
		return err
	}
	resdep.Touch(h)
	return resdep.Finish(h)
}
