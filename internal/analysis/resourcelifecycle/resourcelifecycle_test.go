package resourcelifecycle_test

import (
	"testing"

	"github.com/rolo-storage/rolo/internal/analysis/analysistest"
	"github.com/rolo-storage/rolo/internal/analysis/resourcelifecycle"
)

func TestResourceLifecycle(t *testing.T) {
	analysistest.Run(t, "testdata", resourcelifecycle.Analyzer, "fix/internal/resource")
}
