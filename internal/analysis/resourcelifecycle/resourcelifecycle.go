// Package resourcelifecycle tracks values that carry a Close obligation —
// open files, gzip streams, and any type annotated `//rolosan:resource` —
// from their creation to the end of the creating function, and flags three
// lifecycle bugs:
//
//   - leak: a path from the constructor call to a function exit on which
//     the value is never closed and ownership is never handed off;
//   - double-close: a Close on a path where the value may already be
//     closed;
//   - dropped-error: a bare or deferred Close/Flush on a resource whose
//     error result is silently discarded (the resource-typed slice of
//     errpropagation, which exempts Close/Flush in this analyzer's favor).
//
// The analysis is interprocedural in two ways. Constructors are
// recognized by a name gate — a statically resolved callee named New*,
// Open* or Create* whose results include a resource type — so in-package
// and cross-package wrappers around os.Open and friends give birth to
// tracked values too. And helper calls are interpreted through bottom-up
// summaries: for every function with resource-typed parameters or
// receiver the analyzer records, per slot, whether the function closes,
// merely borrows, or takes ownership of ("escapes") the value, folding
// callee summaries over the callgraph's SCCs and exporting the result as
// facts (namespace "resourcelifecycle") so downstream packages see them.
//
// Within one function the tracking is a forward may-analysis per birth
// site over the CFG with the two-point universe {pending, closed}. A
// Close (direct, deferred, via an in-closure `v.Close()`, or through a
// summarized helper) moves the state to closed; storing, returning,
// capturing for non-close purposes, or passing the value to an unknown or
// owning callee ends the tracking (ownership left this function, which is
// not a leak); err-check refinement drops the obligation on the `err !=
// nil` edge of the constructor's paired error, where the resource is nil.
// Passing the value to a pure-read standard-library package (io, bufio,
// fmt, ...) borrows it and keeps the obligation alive. Unanalyzable
// bodies (goto, labeled branches, select, type switches) are skipped
// rather than over-reported.
//
// Resource types: *os.File, gzip.Writer and gzip.Reader are built in;
// repository types opt in with a `//rolosan:resource` directive on the
// type declaration, which is exported as a fact so importing packages
// track them too. Annotating an interface (such as journal.EventWriter)
// marks every value of that interface type.
//
// Scope: packages with an "internal" or "cmd" path segment, excluding
// _test.go files — the same surface errpropagation checks.
package resourcelifecycle

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"github.com/rolo-storage/rolo/internal/analysis"
	"github.com/rolo-storage/rolo/internal/analysis/callgraph"
	"github.com/rolo-storage/rolo/internal/analysis/cfg"
)

// Analyzer is the resourcelifecycle check.
var Analyzer = &analysis.Analyzer{
	Name: "resourcelifecycle",
	Doc:  "track Close obligations of resource values across helper calls; flag leaks, double closes and dropped Close errors",
	Run:  run,
}

const (
	// resNS is the fact namespace: resource-type annotations keyed by
	// type, and slot dispositions keyed by function.
	resNS = "resourcelifecycle"
	// resourceDirective marks a type whose values carry a Close
	// obligation.
	resourceDirective = "rolosan:resource"
)

// Slot dispositions, ordered borrows < closes < escapes: what a function
// does with a resource-typed parameter or receiver.
const (
	dispBorrows = "borrows" // reads or writes through it; obligation stays with the caller
	dispCloses  = "closes"  // discharges the caller's obligation
	dispEscapes = "escapes" // stores, returns or otherwise takes ownership
)

// May-analysis universe per birth site.
const (
	stPending = iota // created, not yet closed
	stClosed         // closed on this path
)

// resTypeFact marks an annotated resource type for importing packages.
type resTypeFact struct {
	Resource bool `json:"resource"`
}

// resSummary is one function's per-slot dispositions. Params entries are
// "" for parameters that are not resource-typed.
type resSummary struct {
	Recv   string   `json:"recv,omitempty"`
	Params []string `json:"params,omitempty"`
}

// borrowPkgs lists standard-library packages whose functions read or
// write through a resource argument without assuming ownership of it.
var borrowPkgs = map[string]bool{
	"io": true, "bufio": true, "fmt": true, "bytes": true,
	"strings": true, "sort": true, "errors": true,
	"encoding/json": true, "encoding/binary": true,
	"compress/gzip": true, "hash/crc32": true,
}

func run(pass *analysis.Pass) error {
	path := pass.Pkg.Path()
	if !analysis.HasPathSegment(path, "internal") && !analysis.HasPathSegment(path, "cmd") {
		return nil
	}
	c := &checker{
		pass:      pass,
		det:       NewDetector(pass),
		summaries: make(map[*types.Func]*resSummary),
	}
	for tn := range c.det.annotated {
		pass.ExportFact(resNS, tn, resTypeFact{Resource: true})
	}
	c.computeSummaries()
	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		for _, body := range functionBodies(file) {
			c.checkBody(body)
		}
		c.checkDroppedErrors(file)
	}
	return nil
}

type checker struct {
	pass      *analysis.Pass
	det       *Detector
	summaries map[*types.Func]*resSummary
}

func (c *checker) isResource(t types.Type) bool { return c.det.IsResource(t) }

// functionBodies returns every function body in the file — declarations
// and literals — each to be analyzed as its own function, mirroring the
// CFG builder's view that a literal's interior control flow is invisible
// to its enclosing function.
func functionBodies(file *ast.File) []*ast.BlockStmt {
	var bodies []*ast.BlockStmt
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				bodies = append(bodies, n.Body)
			}
		case *ast.FuncLit:
			bodies = append(bodies, n.Body)
		}
		return true
	})
	return bodies
}

// --- resource types -------------------------------------------------

// A Detector resolves which types carry a Close obligation under one
// pass: the built-in resources (*os.File, gzip.Writer, gzip.Reader), the
// current package's `//rolosan:resource` declarations, and annotated
// types imported through facts. It is exported so errpropagation can
// cede dropped Close/Flush reporting on resources to this analyzer while
// keeping it for everything else.
type Detector struct {
	pass      *analysis.Pass
	annotated map[*types.TypeName]bool // this package's //rolosan:resource types
	cache     map[*types.TypeName]bool // resolved resource-ness per named type
}

// NewDetector scans the pass's files for `//rolosan:resource`
// declarations and returns a detector over them, the built-ins, and the
// pass's imported facts.
func NewDetector(pass *analysis.Pass) *Detector {
	d := &Detector{
		pass:      pass,
		annotated: make(map[*types.TypeName]bool),
		cache:     make(map[*types.TypeName]bool),
	}
	d.collectAnnotations()
	return d
}

// collectAnnotations records this package's `//rolosan:resource` types.
func (c *Detector) collectAnnotations() {
	for _, file := range c.pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if !hasDirective(gd.Doc) && !hasDirective(ts.Doc) && !hasDirective(ts.Comment) {
					continue
				}
				if tn, ok := c.pass.TypesInfo.Defs[ts.Name].(*types.TypeName); ok {
					c.annotated[tn] = true
				}
			}
		}
	}
}

func hasDirective(cg *ast.CommentGroup) bool {
	if cg == nil {
		return false
	}
	for _, cm := range cg.List {
		text := strings.TrimPrefix(cm.Text, "//")
		if text == resourceDirective || strings.HasPrefix(text, resourceDirective+" ") {
			return true
		}
	}
	return false
}

// IsResource reports whether t — after stripping one level of pointer —
// is a type whose values carry a Close obligation.
func (c *Detector) IsResource(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	tn := named.Obj()
	if tn.Pkg() == nil {
		return false
	}
	if v, ok := c.cache[tn]; ok {
		return v
	}
	v := c.resolveResource(tn)
	c.cache[tn] = v
	return v
}

func (c *Detector) resolveResource(tn *types.TypeName) bool {
	pkgPath, name := tn.Pkg().Path(), tn.Name()
	switch {
	case pkgPath == "os" && name == "File":
		return true
	case pkgPath == "compress/gzip" && (name == "Writer" || name == "Reader"):
		return true
	}
	if c.annotated[tn] {
		return true
	}
	var f resTypeFact
	return c.pass.ImportFact(resNS, tn, &f) && f.Resource
}

// --- summaries ------------------------------------------------------

// computeSummaries folds per-slot dispositions bottom-up over the
// package's callgraph SCCs, iterating within each component until the
// mutual-recursion fixpoint, then exports every summary as a fact.
func (c *checker) computeSummaries() {
	g := callgraph.Build(c.pass.Files, c.pass.TypesInfo)
	for _, scc := range g.SCCs() {
		for changed := true; changed; {
			changed = false
			for _, node := range scc {
				s := c.summarize(node)
				if !summaryEqual(c.summaries[node.Func], s) {
					c.summaries[node.Func] = s
					changed = true
				}
			}
		}
	}
	for fn, s := range c.summaries {
		if s != nil {
			c.pass.ExportFact(resNS, fn, s)
		}
	}
}

func summaryEqual(a, b *resSummary) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	if a.Recv != b.Recv || len(a.Params) != len(b.Params) {
		return false
	}
	for i := range a.Params {
		if a.Params[i] != b.Params[i] {
			return false
		}
	}
	return true
}

// summarize computes one function's summary, or nil when no parameter or
// receiver is resource-typed.
func (c *checker) summarize(node *callgraph.Node) *resSummary {
	sig, ok := node.Func.Type().(*types.Signature)
	if !ok {
		return nil
	}
	var tracked []*types.Var
	var slots []int // -1 for receiver, else parameter index
	if recv := sig.Recv(); recv != nil && c.isResource(recv.Type()) && recv.Name() != "" && recv.Name() != "_" {
		tracked = append(tracked, recv)
		slots = append(slots, -1)
	}
	for i := 0; i < sig.Params().Len(); i++ {
		p := sig.Params().At(i)
		if c.isResource(p.Type()) && p.Name() != "" && p.Name() != "_" {
			tracked = append(tracked, p)
			slots = append(slots, i)
		}
	}
	if len(tracked) == 0 {
		return nil
	}
	s := &resSummary{Params: make([]string, sig.Params().Len())}
	for i, v := range tracked {
		disp := c.classifyUses(node.Decl.Body, v)
		if slots[i] < 0 {
			s.Recv = disp
		} else {
			s.Params[slots[i]] = disp
		}
	}
	return s
}

// classifyUses folds every appearance of obj in body into one
// disposition: any escaping use wins, else any closing use, else the
// value is only borrowed.
func (c *checker) classifyUses(body *ast.BlockStmt, obj types.Object) string {
	disp := dispBorrows
	analysis.WalkStack(body, func(n ast.Node, stack []ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || c.pass.TypesInfo.Uses[id] != obj {
			return true
		}
		switch c.useKind(stack, id) {
		case dispEscapes:
			disp = dispEscapes
		case dispCloses:
			if disp == dispBorrows {
				disp = dispCloses
			}
		}
		return true
	})
	return disp
}

// useKind classifies a single appearance of a tracked value from its
// syntactic context: the receiver of a method call, an argument to a
// call, or anything else (a store, return, capture — an escape).
func (c *checker) useKind(stack []ast.Node, id *ast.Ident) string {
	if len(stack) == 0 {
		return dispEscapes
	}
	info := c.pass.TypesInfo
	parent := stack[len(stack)-1]
	if sel, ok := parent.(*ast.SelectorExpr); ok && sel.X == id {
		// Method (or field) selection on the value. Only a call through
		// the selection is interpretable; a method value escapes.
		if len(stack) >= 2 {
			if call, ok := stack[len(stack)-2].(*ast.CallExpr); ok && call.Fun == sel {
				if sel.Sel.Name == "Close" {
					return dispCloses
				}
				callee, _ := info.Uses[sel.Sel].(*types.Func)
				if s := c.summaryFor(callee); s != nil && s.Recv != "" {
					return s.Recv
				}
				// A method reads or writes through its own receiver; it
				// does not move ownership unless its summary says so.
				return dispBorrows
			}
		}
		return dispEscapes
	}
	if call, ok := parent.(*ast.CallExpr); ok && call.Fun != id {
		for i, arg := range call.Args {
			if arg == id {
				return c.argDisposition(call, i)
			}
		}
	}
	return dispEscapes
}

// argDisposition resolves what a call does with its i-th argument: the
// callee's summary slot when one exists, a borrow for the pure-read
// standard-library packages, and an ownership transfer otherwise.
func (c *checker) argDisposition(call *ast.CallExpr, i int) string {
	info := c.pass.TypesInfo
	callee := callgraph.StaticCallee(info, call)
	if callee == nil {
		return dispEscapes
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s, ok := info.Selections[sel]; ok && s.Kind() == types.MethodExpr {
			// T.M(v, ...) shifts every argument by one; too rare to model.
			return dispEscapes
		}
	}
	sig, _ := callee.Type().(*types.Signature)
	if sig == nil {
		return dispEscapes
	}
	if s := c.summaryFor(callee); s != nil {
		pi := i
		if sig.Variadic() && pi >= sig.Params().Len()-1 {
			pi = sig.Params().Len() - 1
		}
		if pi >= 0 && pi < len(s.Params) && s.Params[pi] != "" {
			return s.Params[pi]
		}
	}
	if callee.Pkg() != nil && borrowPkgs[callee.Pkg().Path()] {
		return dispBorrows
	}
	return dispEscapes
}

// summaryFor returns the disposition summary of fn: this package's, or
// an imported fact, or nil.
func (c *checker) summaryFor(fn *types.Func) *resSummary {
	if fn == nil {
		return nil
	}
	if s, ok := c.summaries[fn]; ok {
		return s
	}
	var s resSummary
	if c.pass.ImportFact(resNS, fn, &s) {
		c.summaries[fn] = &s
		return &s
	}
	c.summaries[fn] = nil
	return nil
}

// --- per-function lifecycle checking --------------------------------

// A birth is one tracked creation site: a local variable assigned a
// resource result of a constructor call.
type birth struct {
	v      types.Object  // the local holding the resource
	stmt   ast.Stmt      // the assignment statement
	call   *ast.CallExpr // the constructor call
	callee *types.Func   // statically resolved constructor
	errVar types.Object  // paired error result's variable, or nil
	// errStop bounds err-check refinement: the position of the first
	// reassignment of errVar after the birth. Checks of errVar past this
	// point speak about some other call's error, not the constructor's.
	errStop token.Pos
}

// checkBody runs the per-birth may-analysis over one function body.
func (c *checker) checkBody(body *ast.BlockStmt) {
	births := c.collectBirths(body)
	if len(births) == 0 {
		return
	}
	g := cfg.Build(body)
	if g.Unanalyzable {
		return // over-approximation would drown the signal; stay silent
	}
	for _, b := range births {
		c.checkBirth(g, b)
	}
}

// collectBirths finds constructor-call assignments in body, not
// descending into nested function literals (each is its own function).
func (c *checker) collectBirths(body *ast.BlockStmt) []*birth {
	info := c.pass.TypesInfo
	var births []*birth
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := callgraph.StaticCallee(info, call)
		if callee == nil || !constructorName(callee.Name()) {
			return true
		}
		sig, _ := callee.Type().(*types.Signature)
		if sig == nil {
			return true
		}
		results := sig.Results()
		if results.Len() != len(as.Lhs) {
			return true
		}
		// Pair a single error result with its variable for the nil-check
		// refinement.
		var errVar types.Object
		for i := 0; i < results.Len() && i < len(as.Lhs); i++ {
			if types.Identical(results.At(i).Type(), errorType) {
				if id, ok := as.Lhs[i].(*ast.Ident); ok && id.Name != "_" {
					errVar = lhsObject(info, id)
				}
			}
		}
		for i := 0; i < results.Len() && i < len(as.Lhs); i++ {
			if !c.isResource(results.At(i).Type()) {
				continue
			}
			id, ok := as.Lhs[i].(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			v := lhsObject(info, id)
			if v == nil {
				continue
			}
			births = append(births, &birth{
				v: v, stmt: as, call: call, callee: callee,
				errVar:  errVar,
				errStop: nextAssignment(info, body, errVar, as.End()),
			})
		}
		return true
	})
	return births
}

var errorType = types.Universe.Lookup("error").Type()

// constructorName gates which statically resolved callees give birth to
// tracked values. The convention is load-bearing: a New*/Open*/Create*
// function returning a resource hands a fresh obligation to its caller.
func constructorName(name string) bool {
	for _, prefix := range []string{"New", "Open", "Create"} {
		if rest, ok := strings.CutPrefix(name, prefix); ok {
			if rest == "" || rest[0] < 'a' || rest[0] > 'z' {
				return true
			}
		}
	}
	// Unexported wrappers follow the same convention.
	for _, prefix := range []string{"new", "open", "create"} {
		if rest, ok := strings.CutPrefix(name, prefix); ok && rest != "" && (rest[0] < 'a' || rest[0] > 'z') {
			return true
		}
	}
	return false
}

// lhsObject resolves an assignment target: a Defs entry for `:=`
// declarations, a Uses entry for plain assignments and redeclarations.
func lhsObject(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	if v, ok := info.Uses[id].(*types.Var); ok && !v.IsField() {
		return v
	}
	return nil
}

// nextAssignment returns the position of the first assignment to obj
// after pos, or token.Pos of the body end when there is none.
func nextAssignment(info *types.Info, body *ast.BlockStmt, obj types.Object, pos token.Pos) token.Pos {
	stop := body.End()
	if obj == nil {
		return stop
	}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || lhsObject(info, id) != obj || id.Pos() <= pos {
				continue
			}
			if id.Pos() < stop {
				stop = id.Pos()
			}
		}
		return true
	})
	return stop
}

// checkBirth solves the {pending, closed} may-analysis for one birth and
// reports leaks and double closes.
func (c *checker) checkBirth(g *cfg.Graph, b *birth) {
	transfer := func(s ast.Stmt, in cfg.Set) cfg.Set {
		return c.transfer(b, s, in, nil)
	}
	refine := func(cond *cfg.Cond, in cfg.Set) cfg.Set {
		return c.refine(b, cond, in)
	}
	in := g.Solve(0, transfer, refine)

	// Report double closes by replaying each block once against its
	// solved entry state.
	for _, blk := range g.Blocks {
		state, ok := in[blk]
		if !ok {
			continue // unreached
		}
		for _, s := range blk.Stmts {
			state = c.transfer(b, s, state, func(pos token.Pos) {
				c.pass.Reportf(pos, "double-close",
					"%s may already be closed here (double close)", b.v.Name())
			})
		}
		// A leak is a pending obligation flowing off a non-panic exit.
		if len(blk.Succs) == 0 && state.Has(stPending) && !blockPanics(blk) {
			c.pass.Reportf(b.call.Pos(), "leak",
				"%s returned by %s is not closed on every path; close it, defer a close, or hand ownership off",
				typeString(c.pass.TypesInfo, b.call), calleeLabel(b.callee))
			return // one leak report per birth
		}
	}
}

func blockPanics(blk *cfg.Block) bool {
	return len(blk.Stmts) > 0 && cfg.IsPanicStmt(blk.Stmts[len(blk.Stmts)-1])
}

// transfer folds one statement over a birth's state set. onDouble, when
// non-nil, receives the position of a Close that may re-close the value
// (the reporting replay); the solver passes nil.
func (c *checker) transfer(b *birth, s ast.Stmt, in cfg.Set, onDouble func(token.Pos)) cfg.Set {
	if s == b.stmt {
		return cfg.Only(stPending)
	}
	if in.Empty() {
		return in
	}
	escapes, closes := false, false
	var closePos token.Pos
	analysis.WalkStack(s, func(n ast.Node, stack []ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || c.pass.TypesInfo.Uses[id] != b.v {
			return true
		}
		switch c.useKind(stack, id) {
		case dispEscapes:
			escapes = true
		case dispCloses:
			closes = true
			if !closePos.IsValid() {
				closePos = id.Pos()
			}
		}
		return true
	})
	switch {
	case escapes:
		return 0 // ownership left this function; obligation discharged
	case closes:
		if in.Has(stClosed) && onDouble != nil {
			onDouble(closePos)
		}
		return cfg.Only(stClosed)
	default:
		return in
	}
}

// refine interprets an `err == nil` / `err != nil` edge for the birth's
// paired error: on the error edge the constructor failed and the
// resource is nil, so the obligation vanishes. Checks positioned after
// errVar's next reassignment are about some other error and refine
// nothing.
func (c *checker) refine(b *birth, cond *cfg.Cond, in cfg.Set) cfg.Set {
	if b.errVar == nil || len(cond.Vals) != 1 || !isNilIdent(cond.Vals[0]) {
		return in
	}
	id, ok := ast.Unparen(cond.Expr).(*ast.Ident)
	if !ok || c.pass.TypesInfo.Uses[id] != b.errVar || id.Pos() >= b.errStop {
		return in
	}
	if cond.Negated {
		return 0 // err != nil: the constructor failed, nothing was created
	}
	return in
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// --- dropped Close/Flush errors -------------------------------------

// checkDroppedErrors flags bare and deferred Close/Flush calls on
// resource values whose error result is discarded. Bare statement calls
// get a `_ =` suggested fix; a deferred call has no one-line mechanical
// remedy, so it is reported without one.
func (c *checker) checkDroppedErrors(file *ast.File) {
	info := c.pass.TypesInfo
	ast.Inspect(file, func(n ast.Node) bool {
		var call *ast.CallExpr
		var how string
		fixable := false
		switch n := n.(type) {
		case *ast.ExprStmt:
			call, _ = n.X.(*ast.CallExpr)
			how = "call"
			fixable = true
		case *ast.DeferStmt:
			call = n.Call
			how = "deferred call"
		default:
			return true
		}
		if call == nil {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Close" && sel.Sel.Name != "Flush") || len(call.Args) != 0 {
			return true
		}
		fn, _ := info.Uses[sel.Sel].(*types.Func)
		if fn == nil {
			return true
		}
		sig, _ := fn.Type().(*types.Signature)
		if sig == nil || sig.Recv() == nil || !resultsIncludeError(sig.Results()) {
			return true
		}
		recv := info.Types[sel.X]
		if !c.isResource(recv.Type) {
			return true
		}
		d := analysis.Diagnostic{
			Pos:      call.Pos(),
			Category: "dropped-error",
			Message:  how + " to " + methodLabel(fn) + " drops its error; handle it, return it, or discard explicitly with `_ =`",
		}
		if fixable {
			d.SuggestedFixes = []analysis.SuggestedFix{{
				Message: "discard the error explicitly",
				Edits:   []analysis.TextEdit{{Pos: call.Pos(), End: call.Pos(), NewText: "_ = "}},
			}}
		}
		c.pass.Report(d)
		return true
	})
}

func resultsIncludeError(results *types.Tuple) bool {
	for i := 0; i < results.Len(); i++ {
		if types.Identical(results.At(i).Type(), errorType) {
			return true
		}
	}
	return false
}

// --- message rendering ----------------------------------------------

func shortPkg(p *types.Package) string { return p.Name() }

// typeString renders the resource type a constructor call produced, for
// the leak message.
func typeString(info *types.Info, call *ast.CallExpr) string {
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil {
		return "resource"
	}
	t := tv.Type
	if tuple, ok := t.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if !types.Identical(tuple.At(i).Type(), errorType) {
				t = tuple.At(i).Type()
				break
			}
		}
	}
	return types.TypeString(t, shortPkg)
}

func calleeLabel(fn *types.Func) string {
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return "(" + types.TypeString(sig.Recv().Type(), shortPkg) + ")." + fn.Name()
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}

func methodLabel(fn *types.Func) string {
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return "(" + types.TypeString(sig.Recv().Type(), shortPkg) + ")." + fn.Name()
	}
	return fn.Name()
}
