package taintbounds_test

import (
	"testing"

	"github.com/rolo-storage/rolo/internal/analysis/analysistest"
	"github.com/rolo-storage/rolo/internal/analysis/taintbounds"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, "testdata", taintbounds.Analyzer,
		"fix/basic",  // sinks, checked idioms, waiver
		"fix/negfix", // golden autofix: inserted negative guard
		"fix/xpkg",   // cross-package taint summaries (dep: taintdep)
	)
}
