// Package xpkg consumes taintdep's summaries through the fact layer: the
// imported result taint reaches a make sink here, and a local clamp
// discharges it.
package xpkg

import "taintdep"

func bad() [][]byte {
	return make([][]byte, taintdep.SegmentCount()) // want `make length derives from environment variable and has no upper bound check`
}

func ok() [][]byte {
	n := taintdep.SegmentCount()
	if n < 0 || n > 128 {
		n = 128
	}
	return make([][]byte, n)
}
