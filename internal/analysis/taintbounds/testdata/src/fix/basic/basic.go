// Package basic exercises the taint-to-bounds sinks: make sizes,
// indexes, slice bounds and append spreads fed by environment, flag and
// split input, with the checked idioms that discharge each, plus the
// waiver path.
package basic

import (
	"flag"
	"os"
	"strconv"
	"strings"
)

func badAlloc() []byte {
	n, _ := strconv.Atoi(os.Getenv("ROLO_BUF"))
	return make([]byte, n) // want `make length derives from environment variable and has no upper bound check`
}

func okAlloc() []byte {
	n, _ := strconv.Atoi(os.Getenv("ROLO_BUF"))
	if n < 0 || n > 1<<20 {
		return nil
	}
	return make([]byte, n)
}

func okCleanAlloc(n int) []byte {
	// Untainted sizes are the caller's business, whatever their range.
	return make([]byte, n)
}

func badCap() []int64 {
	n, _ := strconv.Atoi(os.Getenv("ROLO_SEGS"))
	return make([]int64, 0, n) // want `make capacity derives from environment variable and has no upper bound check`
}

func badIndex(table []int64) int64 {
	i, _ := strconv.Atoi(flag.Arg(0))
	return table[i] // want `index derives from command-line argument and has no upper bound check`
}

func okIndex(table []int64) int64 {
	i, _ := strconv.Atoi(flag.Arg(0))
	if i < 0 || i >= len(table) {
		return 0
	}
	return table[i]
}

func badSlice(buf []byte) []byte {
	end, _ := strconv.Atoi(os.Getenv("ROLO_END"))
	return buf[:end] // want `slice bound derives from environment variable and has no upper bound check`
}

func badAppend(dst []string) []string {
	fields := strings.Split(os.Getenv("ROLO_FIELDS"), ",")
	return append(dst, fields...) // want `appended length derives from environment variable and has no upper bound check`
}

func okAppendOne(dst []string) []string {
	// Appending a single tainted element grows by one: not a spread.
	return append(dst, os.Getenv("ROLO_NAME"))
}

func negOnly() []byte {
	n, _ := strconv.Atoi(os.Getenv("ROLO_N"))
	if n > 64 {
		n = 64
	}
	return make([]byte, n) // want `make length derives from environment variable and may be negative \(interval \[-∞, 64\]\)`
}

func waived() []byte {
	n, _ := strconv.Atoi(os.Getenv("ROLO_RAW"))
	return make([]byte, n) //lint:allow taintbounds:alloc sized by the operator on purpose
}
