// Package negfix exercises the guard-against-negative autofix: the sink
// is a plain identifier, bounded above but not below, the allocation is
// a statement of its own, and the function has no results.
package negfix

import (
	"os"
	"strconv"
)

func grow() {
	n, _ := strconv.Atoi(os.Getenv("ROLO_SEGMENTS"))
	if n > 64 {
		n = 64
	}
	segs := make([][]byte, n) // want `make length derives from environment variable and may be negative`
	_ = segs
}
