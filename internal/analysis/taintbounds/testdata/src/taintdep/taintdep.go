// Package taintdep is the cross-package dependency fixture: the taint on
// SegmentCount's result travels to the importing package in its
// valueflow summary.
package taintdep

import (
	"os"
	"strconv"
)

// SegmentCount reads the segment budget from the environment.
func SegmentCount() int {
	n, _ := strconv.Atoi(os.Getenv("ROLO_SEGMENTS"))
	return n
}
