// Package taintbounds flags allocation sizes, indexes, slice bounds and
// append growth that derive from untrusted input without an intervening
// bound check.
//
// Taint sources are the valueflow intrinsics: environment variables,
// command-line flags and arguments, file and stream contents, scanned
// and CSV input, and trace parsers (any Parse* in a package whose path
// ends in "trace"). The taint travels with the value through the lattice
// — arithmetic, conversions, strconv/strings/bytes/fmt helpers, loads
// out of tainted containers, and function summaries across package
// boundaries — until a branch bounds it: the edge refinement records
// constant bounds as interval endpoints and comparisons against
// non-constant expressions (i < len(s)) as checked bounds, either of
// which discharges the obligation.
//
// Categories:
//
//   - alloc: make length/capacity with no upper bound check.
//   - index: index or slice bound with no upper bound check.
//   - append: append(dst, src...) where the spread's length is tainted
//     and unbounded.
//   - negative: the sink is bounded above but can still be negative —
//     make and index panic on negative values. Where the shape is
//     unambiguous the fix inserts `if x < 0 { return }` above the
//     statement, which bounds the value below and so cannot reproduce
//     the diagnostic.
//
// Every finding carries the value's interval as evidence. Clean
// (untainted) values never trigger findings, whatever their interval.
// Scope: all non-test files.
package taintbounds

import (
	"go/ast"
	"go/token"

	"github.com/rolo-storage/rolo/internal/analysis"
	"github.com/rolo-storage/rolo/internal/analysis/ssa"
	"github.com/rolo-storage/rolo/internal/analysis/valueflow"
)

// Analyzer is the taint-to-bounds check.
var Analyzer = &analysis.Analyzer{
	Name: "taintbounds",
	Doc:  "flag tainted allocation sizes, indexes and append growth with no bound check",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	res := valueflow.Compute(pass)
	for _, fr := range res.Funcs {
		if fr.SSA.Unanalyzable || analysis.IsTestFile(pass.Fset, fr.SSA.Node.Pos()) {
			continue
		}
		checkBounds(pass, res, fr)
	}
	return nil
}

// noun names the sink for the finding message.
func noun(k ssa.BoundKind) string {
	switch k {
	case ssa.MakeLen:
		return "make length"
	case ssa.MakeCap:
		return "make capacity"
	case ssa.Index:
		return "index"
	case ssa.SliceBound:
		return "slice bound"
	case ssa.AppendSpread:
		return "appended length"
	}
	return "bound"
}

func category(k ssa.BoundKind) string {
	switch k {
	case ssa.MakeLen, ssa.MakeCap:
		return "alloc"
	case ssa.AppendSpread:
		return "append"
	}
	return "index"
}

func checkBounds(pass *analysis.Pass, res *valueflow.Result, fr *valueflow.FuncResult) {
	for _, bs := range fr.SSA.Bounds {
		if !fr.Reached(bs.Block) {
			continue
		}
		a := res.SiteAbstract(fr, bs.Val, bs.Block, bs.Guards)
		if a.Taint == "" {
			continue
		}
		switch {
		case !a.IV.BoundedAbove():
			pass.Reportf(bs.Expr.Pos(), category(bs.Kind),
				"%s derives from %s and has no upper bound check (interval %s)",
				noun(bs.Kind), a.Taint, a.IV)
		case bs.Kind != ssa.AppendSpread && !a.IV.BoundedBelow():
			// A slice length is never negative, so append growth is exempt;
			// make and index panic on a negative value.
			pass.Report(analysis.Diagnostic{
				Pos:      bs.Expr.Pos(),
				Category: "negative",
				Message: noun(bs.Kind) + " derives from " + a.Taint +
					" and may be negative (interval " + a.IV.String() + ")",
				SuggestedFixes: negGuardFix(fr.SSA, bs),
			})
		}
	}
}

// negGuardFix builds the insert-a-guard fix when the shape is
// unambiguous: the sink value is a plain identifier, the site is in a
// statement directly inside a block, no short-circuit guard is active,
// and the enclosing function has no results (so a bare `return` is
// valid).
func negGuardFix(f *ssa.Func, bs *ssa.BoundSite) []analysis.SuggestedFix {
	if len(bs.Guards) > 0 || f.Sig == nil || f.Sig.Results().Len() > 0 {
		return nil
	}
	id, ok := ast.Unparen(bs.Expr).(*ast.Ident)
	if !ok {
		return nil
	}
	stmt := enclosingBlockStmt(f.Node, bs.Expr.Pos())
	if stmt == nil {
		return nil
	}
	return []analysis.SuggestedFix{{
		Message: "guard " + id.Name + " against negative values before the " + noun(bs.Kind),
		Edits: []analysis.TextEdit{{
			Pos:     stmt.Pos(),
			End:     stmt.Pos(),
			NewText: "if " + id.Name + " < 0 {\nreturn\n}\n",
		}},
	}}
}

// enclosingBlockStmt finds the innermost statement containing pos whose
// parent is a plain block — the insertion point for a guard. Inspect
// visits outer blocks before the blocks nested inside them, so the last
// match is the innermost.
func enclosingBlockStmt(root ast.Node, pos token.Pos) ast.Stmt {
	var found ast.Stmt
	ast.Inspect(root, func(n ast.Node) bool {
		if bs, ok := n.(*ast.BlockStmt); ok {
			for _, s := range bs.List {
				if s.Pos() <= pos && pos < s.End() {
					found = s
				}
			}
		}
		return true
	})
	return found
}
