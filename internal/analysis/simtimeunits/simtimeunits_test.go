package simtimeunits_test

import (
	"testing"

	"github.com/rolo-storage/rolo/internal/analysis/analysistest"
	"github.com/rolo-storage/rolo/internal/analysis/simtimeunits"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, "testdata", simtimeunits.Analyzer,
		"fix/units",      // sim.Time literal rule; float equality out of scope here
		"fix/metricsfix", // float equality rule in scope
	)
}
