// Package simtimeunits enforces sim-time hygiene.
//
// Two rules:
//
//  1. A bare integer literal must not be used where sim.Time is expected.
//     sim.Time counts microseconds; `sched(1000)` silently means one
//     millisecond while reading like "1000 of something". Writing the
//     unit — `sched(1*sim.Millisecond)` — is mandatory. Literals folded
//     into arithmetic with a unit (the `3 * sim.Second` idiom) and the
//     literal 0 (unambiguous: the epoch / zero duration) are allowed, as
//     are constant declarations (that is how the units themselves are
//     defined).
//
//  2. In metrics and experiments packages, float64/float32 values must
//     not be compared with == or !=: accumulated energies and derived
//     ratios carry rounding error, and exact comparison is almost always
//     a latent bug. Compare against a tolerance, or restructure (<=, <).
//
// _test.go files are exempt: engine tests legitimately use abstract
// integer ticks, and tests compare exact floats on purpose.
package simtimeunits

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"github.com/rolo-storage/rolo/internal/analysis"
)

// Analyzer is the simtimeunits check.
var Analyzer = &analysis.Analyzer{
	Name: "simtimeunits",
	Doc:  "require unit expressions for sim.Time literals and forbid float equality in metrics code",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	path := pass.Pkg.Path()
	floatEqScope := strings.Contains(path, "metrics") || strings.Contains(path, "experiment")
	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		analysis.WalkStack(file, func(n ast.Node, stack []ast.Node) bool {
			switch n := n.(type) {
			case *ast.BasicLit:
				checkTimeLiteral(pass, n, stack)
			case *ast.BinaryExpr:
				if floatEqScope {
					checkFloatEquality(pass, n)
				}
			}
			return true
		})
	}
	return nil
}

// checkTimeLiteral flags an integer literal whose contextual type is
// sim.Time unless it is 0, part of a larger arithmetic expression, or a
// constant declaration initializer.
func checkTimeLiteral(pass *analysis.Pass, lit *ast.BasicLit, stack []ast.Node) {
	if lit.Kind != token.INT {
		return
	}
	// The contextual type may be recorded on the literal itself or on a
	// (…)/-x wrapper around it (a negated literal is typed as a whole).
	node := ast.Expr(lit)
	i := len(stack) - 1
	for {
		if tv, ok := pass.TypesInfo.Types[node]; ok && analysis.IsNamed(tv.Type, "internal/sim", "Time") {
			if tv.Value != nil && constant.Sign(tv.Value) == 0 {
				return
			}
			break
		}
		if i < 0 {
			return
		}
		switch p := stack[i].(type) {
		case *ast.ParenExpr:
			node = p
		case *ast.UnaryExpr:
			node = p
		default:
			return
		}
		i--
	}
	for ; i >= 0; i-- {
		switch parent := stack[i].(type) {
		case *ast.ParenExpr, *ast.UnaryExpr, *ast.ValueSpec:
			continue // look through (…), -x, and up to the owning decl
		case *ast.BinaryExpr:
			// `5 * sim.Second` and friends: the unit is in the expression.
			return
		case *ast.GenDecl:
			if parent.Tok == token.CONST {
				return // unit constants are defined from literals
			}
		}
		break
	}
	pass.Reportf(lit.Pos(), "raw-literal",
		"raw integer literal %s used as sim.Time; write the unit (e.g. %s*sim.Microsecond)",
		lit.Value, lit.Value)
}

// checkFloatEquality flags == and != between floating-point operands.
func checkFloatEquality(pass *analysis.Pass, bin *ast.BinaryExpr) {
	if bin.Op != token.EQL && bin.Op != token.NEQ {
		return
	}
	if !isFloat(pass.TypesInfo, bin.X) && !isFloat(pass.TypesInfo, bin.Y) {
		return
	}
	pass.Reportf(bin.OpPos, "float-eq",
		"float equality comparison (%s) in metrics code; compare with a tolerance or restructure",
		bin.Op)
}

func isFloat(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsFloat != 0 && basic.Info()&types.IsUntyped == 0
}
