// Package units exercises the sim.Time literal rule.
package units

import "github.com/rolo-storage/rolo/internal/sim"

func sched(at sim.Time)          {}
func window(start, end sim.Time) {}
func scaled(n int, d sim.Time)   {}

type config struct {
	Interval sim.Time
	Count    int
}

func literals() {
	sched(5)                     // want `raw integer literal 5 used as sim\.Time`
	sched(1000)                  // want `raw integer literal 1000 used as sim\.Time`
	sched(0)                     // zero is unambiguous: fine
	sched(5 * sim.Millisecond)   // unit expression: fine
	sched(sim.Second)            // named constant: fine
	window(0, 3*sim.Second)      // fine
	window(7, sim.Second)        // want `raw integer literal 7 used as sim\.Time`
	scaled(5, sim.Second)        // the plain int 5 is not a sim.Time: fine
	sched(-2)                    // want `raw integer literal 2 used as sim\.Time`
	sched(2 - 3*sim.Millisecond) // arithmetic carries the unit: fine
}

func composite() {
	_ = config{Interval: 250, Count: 4}                   // want `raw integer literal 250 used as sim\.Time`
	_ = config{Interval: 250 * sim.Microsecond, Count: 4} // fine
}

func decls() {
	var d sim.Time = 9        // want `raw integer literal 9 used as sim\.Time`
	const grace sim.Time = 30 // constant declarations define units: fine
	_ = d
	_ = grace
	var ok sim.Time = 2 * sim.Second // fine
	_ = ok
}

func allowed() {
	sched(12345) //lint:allow simtimeunits:raw-literal calibration value measured in microseconds
}

func floatsOutOfScope(a, b float64) bool {
	return a == b // float equality outside metrics/experiments: fine
}
