// Package metricsfix exercises the float-equality rule, which applies to
// packages whose path mentions metrics or experiments.
package metricsfix

func ratios(a, b float64, n int) bool {
	if a == b { // want `float equality comparison`
		return true
	}
	if a != 0 { // want `float equality comparison`
		return false
	}
	if a <= b { // ordered comparison: fine
		return true
	}
	if n == 0 { // integer equality: fine
		return false
	}
	const eps = 1e-9
	diff := a - b
	if diff < 0 {
		diff = -diff
	}
	return diff < eps // tolerance comparison: fine
}

func allowed(x float64) bool {
	return x == 0 //lint:allow simtimeunits:float-eq zero sentinel set explicitly upstream, never computed
}
