// Package sim is a fixture stub of the real simulation engine package:
// the Time type and its unit constants, matched by the simtimeunits
// analyzer via package-path suffix.
package sim

// Time is a simulation timestamp in microseconds.
type Time int64

// Unit constants (defined from raw literals — the one sanctioned place).
const (
	Microsecond Time = 1
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)
