package valueflow

// Intrinsic summaries for standard-library functions the repo cannot
// analyze, keyed by analysis.ObjectKey. Three families matter:
//
//   - no-return sinks (os.Exit, log.Fatal*, runtime.Goexit, testing's
//     FailNow family) so `if x == nil { log.Fatalf(...) }` refines x;
//   - constructors with known nilness (errors.New is never nil; os.Open
//     is nil exactly when err != nil);
//   - taint sources (environment, flags, file/stream reads, CSV records,
//     bufio scanners) feeding the taintbounds analyzer.
//
// strconv/strings/bytes/fmt calls additionally propagate taint from
// their arguments, and Parse* functions in any in-repo trace package are
// treated as taint sources for their results.

import (
	"go/types"
	"strings"

	"github.com/rolo-storage/rolo/internal/analysis"
)

func nonnilResult() ResultSummary        { return ResultSummary{Nilness: "nonnil"} }
func plainResult() ResultSummary         { return ResultSummary{} }
func taintResult(w string) ResultSummary { return ResultSummary{Taint: w} }

func openLike(what string) *Summary {
	return &Summary{Results: []ResultSummary{
		{Nilness: "maybe-nil", NilOrigin: "nil when the " + what + " fails", NonNilWhenNoErr: true},
		plainResult(),
	}}
}

var noReturn = &Summary{NeverReturns: true}

var intrinsics = map[string]*Summary{
	// no-return sinks
	"os.Exit":                  noReturn,
	"runtime.Goexit":           noReturn,
	"log.Fatal":                noReturn,
	"log.Fatalf":               noReturn,
	"log.Fatalln":              noReturn,
	"log.Panic":                noReturn,
	"log.Panicf":               noReturn,
	"log.Panicln":              noReturn,
	"(log.Logger).Fatal":       noReturn,
	"(log.Logger).Fatalf":      noReturn,
	"(log.Logger).Fatalln":     noReturn,
	"(log.Logger).Panic":       noReturn,
	"(log.Logger).Panicf":      noReturn,
	"(log.Logger).Panicln":     noReturn,
	"(testing.common).Fatal":   noReturn,
	"(testing.common).Fatalf":  noReturn,
	"(testing.common).FailNow": noReturn,
	"(testing.common).Skip":    noReturn,
	"(testing.common).Skipf":   noReturn,
	"(testing.common).SkipNow": noReturn,

	// never-nil constructors
	"errors.New":          {Results: []ResultSummary{nonnilResult()}},
	"fmt.Errorf":          {Results: []ResultSummary{nonnilResult()}},
	"bufio.NewReader":     {Results: []ResultSummary{nonnilResult()}},
	"bufio.NewWriter":     {Results: []ResultSummary{nonnilResult()}},
	"bytes.NewBuffer":     {Results: []ResultSummary{nonnilResult()}},
	"bytes.NewReader":     {Results: []ResultSummary{nonnilResult()}},
	"strings.NewReader":   {Results: []ResultSummary{nonnilResult()}},
	"strings.NewReplacer": {Results: []ResultSummary{nonnilResult()}},
	"log.New":             {Results: []ResultSummary{nonnilResult()}},
	"csv.NewReader":       {Results: []ResultSummary{nonnilResult()}},
	"csv.NewWriter":       {Results: []ResultSummary{nonnilResult()}},

	// nil-iff-error constructors
	"os.Open":     openLike("open"),
	"os.Create":   openLike("create"),
	"os.OpenFile": openLike("open"),

	// taint sources: environment and command line
	"os.Getenv": {Results: []ResultSummary{taintResult("environment variable")}},
	"os.LookupEnv": {Results: []ResultSummary{
		taintResult("environment variable"), plainResult()}},
	"flag.Arg":  {Results: []ResultSummary{taintResult("command-line argument")}},
	"flag.Args": {Results: []ResultSummary{taintResult("command-line arguments")}},
	"flag.String": {Results: []ResultSummary{
		{Nilness: "nonnil", Taint: "command-line flag"}}},
	"flag.Int":            {Results: []ResultSummary{{Nilness: "nonnil", Taint: "command-line flag"}}},
	"flag.Int64":          {Results: []ResultSummary{{Nilness: "nonnil", Taint: "command-line flag"}}},
	"flag.Uint":           {Results: []ResultSummary{{Nilness: "nonnil", Taint: "command-line flag"}}},
	"flag.Uint64":         {Results: []ResultSummary{{Nilness: "nonnil", Taint: "command-line flag"}}},
	"flag.Float64":        {Results: []ResultSummary{{Nilness: "nonnil", Taint: "command-line flag"}}},
	"flag.Bool":           {Results: []ResultSummary{{Nilness: "nonnil", Taint: "command-line flag"}}},
	"flag.Duration":       {Results: []ResultSummary{{Nilness: "nonnil", Taint: "command-line flag"}}},
	"(flag.FlagSet).Arg":  {Results: []ResultSummary{taintResult("command-line argument")}},
	"(flag.FlagSet).Args": {Results: []ResultSummary{taintResult("command-line arguments")}},

	// taint sources: file and stream input
	"os.ReadFile":           {Results: []ResultSummary{taintResult("file contents"), plainResult()}},
	"io.ReadAll":            {Results: []ResultSummary{taintResult("stream contents"), plainResult()}},
	"(bufio.Scanner).Text":  {Results: []ResultSummary{taintResult("scanned input")}},
	"(bufio.Scanner).Bytes": {Results: []ResultSummary{taintResult("scanned input")}},
	"(bufio.Reader).ReadString": {Results: []ResultSummary{
		taintResult("read input"), plainResult()}},
	"(bufio.Reader).ReadBytes": {Results: []ResultSummary{
		taintResult("read input"), plainResult()}},
	"(csv.Reader).Read": {Results: []ResultSummary{
		taintResult("CSV record"), plainResult()}},
	"(csv.Reader).ReadAll": {Results: []ResultSummary{
		taintResult("CSV records"), plainResult()}},
}

// intrinsicSummary returns the built-in summary for fn, or nil.
func intrinsicSummary(fn *types.Func) *Summary {
	if fn == nil {
		return nil
	}
	if s, ok := intrinsics[analysis.ObjectKey(fn)]; ok {
		return s
	}
	// In-repo trace parsers are taint sources: whatever a Parse* function
	// in a trace package returns came from workload input.
	if pkg := fn.Pkg(); pkg != nil && hasPathSegment(pkg.Path(), "trace") &&
		strings.HasPrefix(fn.Name(), "Parse") {
		return traceParseSummary(fn)
	}
	return nil
}

// traceParseSummary marks every non-error result of fn tainted.
func traceParseSummary(fn *types.Func) *Summary {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	n := sig.Results().Len()
	s := &Summary{Results: make([]ResultSummary, n)}
	for i := 0; i < n; i++ {
		if !isErrType(sig.Results().At(i).Type()) {
			s.Results[i].Taint = "trace input"
		}
	}
	return s
}

// propagatesTaint reports whether fn is a pure transformer whose results
// inherit the taint of its operands (string/byte munging, formatting,
// numeric parsing).
func propagatesTaint(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	switch pkg.Path() {
	case "strconv", "strings", "bytes", "fmt":
		return true
	}
	return false
}

func hasPathSegment(path, seg string) bool {
	for _, p := range strings.Split(path, "/") {
		if p == seg {
			return true
		}
	}
	return false
}
