// Package valueflow runs a sparse-conditional value lattice over the ssa
// package's IR and publishes the results to the nilness, unitflow and
// taintbounds analyzers.
//
// Each virtual register gets one Abstract: a nilness verdict (with the
// evidence that makes a possibly-nil value worth flagging), a saturating
// constant interval (doubling as the length interval for slice and string
// values), a unit tag (seeded from declared types such as sim.Time and
// from //rolosan:unit directives), and a taint origin. Branch conditions
// narrow registers along CFG edges: a dense per-block refinement pass
// interprets nil comparisons, comma-ok booleans, relational bounds and
// (via function summaries) err-result pairing, so `if err != nil { return
// }` really does prove the paired result non-nil afterwards.
//
// Per-function summaries — parameter nilness preconditions and unit
// expectations, result nilness/interval/unit/taint postconditions, and
// whether the function can return at all — cross package boundaries
// through the analysis framework's fact layer in namespace "valueflow",
// alongside unit tags for //rolosan:unit-annotated named types. Within a
// package, functions are summarized bottom-up over call-graph SCCs, so
// intra-package helpers refine their callers too.
//
// The computation runs once per package: the three consuming analyzers
// share a single-entry cache keyed by the *types.Package, and whichever
// of them runs first exports the facts (the drivers share one exported
// fact set per unit, so parity holds with any subset of the three
// enabled).
package valueflow

import (
	"fmt"
	"math"
	"sync"

	"go/types"

	"github.com/rolo-storage/rolo/internal/analysis"
	"github.com/rolo-storage/rolo/internal/analysis/ssa"
)

// FactNS is the fact namespace shared by the valueflow analyzers.
const FactNS = "valueflow"

// Nilness is the pointer-validity verdict for one register.
type Nilness uint8

const (
	NilTop   Nilness = iota // no information; never flagged
	NonNil                  // proven non-nil
	IsNil                   // proven nil
	MaybeNil                // may be nil, with evidence — the flaggable state
)

var nilNames = [...]string{"unknown", "nonnil", "nil", "maybe-nil"}

func (n Nilness) String() string {
	if int(n) < len(nilNames) {
		return nilNames[n]
	}
	return "nilness?"
}

// joinNil merges two verdicts at a control-flow join. Evidence is sticky:
// a path that proves nil possible makes the join flaggable.
func joinNil(a, b Nilness) Nilness {
	if a == b {
		return a
	}
	if a > b {
		a, b = b, a
	}
	switch {
	case a == NilTop && b == NonNil:
		return NilTop
	default:
		// Any combination involving IsNil or MaybeNil that is not
		// IsNil⊔IsNil keeps the nil possibility alive with evidence.
		return MaybeNil
	}
}

const (
	NegInf = math.MinInt64
	PosInf = math.MaxInt64
)

// Interval is a saturating integer interval. For slice and string values
// it describes the length. LoChecked/HiChecked record that the value was
// compared against a non-constant bound on this path, which is all the
// taint-bounds check needs when the bound itself is not a constant.
type Interval struct {
	Lo, Hi               int64
	LoChecked, HiChecked bool
}

// Top is the unbounded interval.
var Top = Interval{Lo: NegInf, Hi: PosInf}

func (iv Interval) BoundedBelow() bool { return iv.Lo > NegInf || iv.LoChecked }
func (iv Interval) BoundedAbove() bool { return iv.Hi < PosInf || iv.HiChecked }

func (iv Interval) String() string {
	lo, hi := "-∞", "+∞"
	if iv.Lo > NegInf {
		lo = fmt.Sprint(iv.Lo)
	} else if iv.LoChecked {
		lo = "checked"
	}
	if iv.Hi < PosInf {
		hi = fmt.Sprint(iv.Hi)
	} else if iv.HiChecked {
		hi = "checked"
	}
	return "[" + lo + ", " + hi + "]"
}

func joinInterval(a, b Interval) Interval {
	return Interval{
		Lo:        min(a.Lo, b.Lo),
		Hi:        max(a.Hi, b.Hi),
		LoChecked: a.BoundedBelow() && b.BoundedBelow(),
		HiChecked: a.BoundedAbove() && b.BoundedAbove(),
	}
}

// meetInterval narrows a by b (a refinement).
func meetInterval(a, b Interval) Interval {
	return Interval{
		Lo:        max(a.Lo, b.Lo),
		Hi:        min(a.Hi, b.Hi),
		LoChecked: a.LoChecked || b.LoChecked,
		HiChecked: a.HiChecked || b.HiChecked,
	}
}

func satAdd(a, b int64) int64 {
	if a == NegInf || b == NegInf {
		return NegInf
	}
	if a == PosInf || b == PosInf {
		return PosInf
	}
	s := a + b
	if (b > 0 && s < a) || (b < 0 && s > a) {
		if b > 0 {
			return PosInf
		}
		return NegInf
	}
	return s
}

func satNeg(a int64) int64 {
	switch a {
	case NegInf:
		return PosInf
	case PosInf:
		return NegInf
	}
	return -a
}

func addInterval(a, b Interval) Interval {
	return Interval{Lo: satAdd(a.Lo, b.Lo), Hi: satAdd(a.Hi, b.Hi)}
}

func subInterval(a, b Interval) Interval {
	return Interval{Lo: satAdd(a.Lo, satNeg(b.Hi)), Hi: satAdd(a.Hi, satNeg(b.Lo))}
}

// pointInterval is the interval of a known constant.
func pointInterval(c int64) Interval { return Interval{Lo: c, Hi: c} }

// An Abstract is the lattice element of one register.
type Abstract struct {
	Nil       Nilness
	NilOrigin string // evidence for MaybeNil/IsNil, shown in findings

	IV Interval

	// Unit tags a quantity's dimension: "time", "bytes", "blocks",
	// "sectors", or any //rolosan:unit name. "" is dimensionless/unknown.
	Unit string

	Taint    string // origin description of untrusted input; "" if clean
	TaintPos string // rendered source position of the taint source
}

// unknown is the no-information element (with a unit, which is type-derived).
func unknownAbs(unit string) Abstract {
	return Abstract{Nil: NilTop, IV: Top, Unit: unit}
}

func joinAbs(a, b Abstract) Abstract {
	out := Abstract{
		Nil: joinNil(a.Nil, b.Nil),
		IV:  joinInterval(a.IV, b.IV),
	}
	out.NilOrigin = a.NilOrigin
	if out.NilOrigin == "" {
		out.NilOrigin = b.NilOrigin
	}
	switch {
	case a.Unit == b.Unit:
		out.Unit = a.Unit
	case a.Unit == "":
		out.Unit = b.Unit
	case b.Unit == "":
		out.Unit = a.Unit
	}
	out.Taint, out.TaintPos = a.Taint, a.TaintPos
	if out.Taint == "" {
		out.Taint, out.TaintPos = b.Taint, b.TaintPos
	}
	return out
}

// A Refine narrows one register along an edge or under a guard.
type Refine struct {
	HasNil bool
	Nil    Nilness

	// ClearEvidence drops a MaybeNil verdict back to NilTop without
	// claiming non-nil: a comma-ok check proves the lookup succeeded, but
	// the stored value could still be a typed nil.
	ClearEvidence bool

	HasIV bool
	IV    Interval
}

func (r Refine) apply(a Abstract) Abstract {
	if r.HasNil {
		a.Nil = r.Nil
		if r.Nil == NonNil {
			a.NilOrigin = ""
		}
	}
	if r.ClearEvidence && a.Nil == MaybeNil {
		a.Nil = NilTop
		a.NilOrigin = ""
	}
	if r.HasIV {
		a.IV = meetInterval(a.IV, r.IV)
	}
	return a
}

// joinRefine weakens two refinements at a merge; ok reports whether any
// information survives.
func joinRefine(a, b Refine) (Refine, bool) {
	var out Refine
	if a.HasNil && b.HasNil {
		n := joinNil(a.Nil, b.Nil)
		if n == NonNil || n == IsNil {
			out.HasNil = true
			out.Nil = n
		}
	}
	out.ClearEvidence = a.ClearEvidence && b.ClearEvidence
	if a.HasIV && b.HasIV {
		iv := joinInterval(a.IV, b.IV)
		if iv != Top {
			out.HasIV = true
			out.IV = iv
		}
	}
	return out, out.HasNil || out.ClearEvidence || out.HasIV
}

// A RefMap is the refinement state at one program point.
type RefMap map[*ssa.Value]Refine

func (m RefMap) clone() RefMap {
	out := make(RefMap, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// equalRef compares two refinement maps.
func equalRef(a, b RefMap) bool {
	if len(a) != len(b) {
		return false
	}
	for k, va := range a {
		if vb, ok := b[k]; !ok || va != vb {
			return false
		}
	}
	return true
}

// joinRefMap merges two program points; keys surviving must be refined on
// both.
func joinRefMap(a, b RefMap) RefMap {
	out := make(RefMap)
	for k, va := range a {
		if vb, ok := b[k]; ok {
			if j, keep := joinRefine(va, vb); keep {
				out[k] = j
			}
		}
	}
	return out
}

// ---- summaries (the "valueflow" fact schema) ----

// A Summary is the exported value behavior of one function.
type Summary struct {
	// Params has one entry per parameter, receiver first for methods.
	Params []ParamSummary `json:"params,omitempty"`
	// Results has one entry per result.
	Results []ResultSummary `json:"results,omitempty"`
	// NeverReturns marks functions that cannot return normally (every
	// path panics, exits or loops forever).
	NeverReturns bool `json:"noreturn,omitempty"`
}

type ParamSummary struct {
	// NonNilRequired: the function dereferences this parameter before any
	// guard, so passing a provably/possibly nil argument is a bug.
	NonNilRequired bool `json:"nonnil,omitempty"`
	// Unit of the parameter's declared type, when known.
	Unit string `json:"unit,omitempty"`
}

type ResultSummary struct {
	// Nilness of the result across all returns ("" when unknown).
	Nilness string `json:"nil,omitempty"`
	// NilOrigin is the evidence wording for a maybe-nil result.
	NilOrigin string `json:"nilOrigin,omitempty"`
	// NonNilWhenNoErr: for a (T, error) function, the T result is proven
	// non-nil on every return where the error is (or may be) nil. Callers
	// checking the error may then rely on the result.
	NonNilWhenNoErr bool `json:"nonnilOK,omitempty"`
	// Lo/Hi bound the result when finite (length for slices/strings).
	Lo *int64 `json:"lo,omitempty"`
	Hi *int64 `json:"hi,omitempty"`
	// Unit of the result's value flow, when known.
	Unit string `json:"unit,omitempty"`
	// Taint marks results derived from untrusted input.
	Taint string `json:"taint,omitempty"`
}

// UnitFact tags a named type with a unit (//rolosan:unit on the type
// declaration), exported under the type's object key.
type UnitFact struct {
	Unit string `json:"unit"`
}

func (s *Summary) resultNilness(i int) Nilness {
	if s == nil || i >= len(s.Results) {
		return NilTop
	}
	switch s.Results[i].Nilness {
	case "nonnil":
		return NonNil
	case "nil":
		return IsNil
	case "maybe-nil":
		return MaybeNil
	}
	return NilTop
}

// ---- per-package results ----

// A FuncResult carries the solved lattice of one function or literal.
type FuncResult struct {
	SSA *ssa.Func
	Obj *types.Func // nil for literals

	// abs is the fixpoint abstract of every register, indexed by Value ID.
	abs []Abstract
	// absSet marks IDs whose abstract has been computed at least once;
	// unset φ operands are treated as bottom (skipped from joins).
	absSet []bool
	// in is the refinement state on entry to each block (nil: unreached).
	in []RefMap
	// edgeIn[b][i] is the refinement state along the i'th in-edge of
	// block b (parallel to Preds), used for edge-refined φ operands.
	edgeIn [][]RefMap
	// terminated marks blocks that end in a call that never returns.
	terminated []bool

	callOf map[*ssa.Value]*ssa.CallSite // call root → site
}

// Reached reports whether blk is reachable (refinement-wise) from entry.
func (fr *FuncResult) Reached(blk *ssa.Block) bool {
	return blk != nil && blk.Index < len(fr.in) && fr.in[blk.Index] != nil
}

// AbstractOf returns the flow-insensitive abstract of v.
func (fr *FuncResult) AbstractOf(v *ssa.Value) Abstract {
	if v == nil || v.ID >= len(fr.abs) {
		return unknownAbs("")
	}
	return fr.abs[v.ID]
}

// AbstractAt returns v's abstract at blk's entry, with the block's edge
// refinements applied.
func (fr *FuncResult) AbstractAt(v *ssa.Value, blk *ssa.Block) Abstract {
	a := fr.AbstractOf(v)
	if v == nil || blk == nil || blk.Index >= len(fr.in) || fr.in[blk.Index] == nil {
		return a
	}
	if r, ok := fr.in[blk.Index][v]; ok {
		a = r.apply(a)
	}
	return a
}

// A Result is the valueflow computation for one package.
type Result struct {
	Funcs []*FuncResult

	// summaries of this package's functions, by object.
	summaries map[*types.Func]*Summary
	// unitsByType: local //rolosan:unit type tags.
	unitsByType map[*types.TypeName]string
	// unitsByVar: local //rolosan:unit var/field/const tags.
	unitsByVar map[*types.Var]string
	// unitsByObj: the same tags for any object kind (consts included).
	unitsByObj map[types.Object]string

	pass *analysis.Pass
}

// SummaryOf resolves the summary of fn: intrinsics first, then this
// package's own functions, then imported facts.
func (r *Result) SummaryOf(fn *types.Func) *Summary {
	if fn == nil {
		return nil
	}
	if s := intrinsicSummary(fn); s != nil {
		return s
	}
	if s, ok := r.summaries[fn]; ok {
		return s
	}
	var s Summary
	if r.pass.ImportFact(FactNS, fn, &s) {
		return &s
	}
	return nil
}

// UnitOf resolves the unit of type t: sim.Time, then local and imported
// //rolosan:unit tags on the named type.
func (r *Result) UnitOf(t types.Type) string {
	if t == nil {
		return ""
	}
	t = types.Unalias(t)
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	if analysis.IsNamed(t, "internal/sim", "Time") {
		return "time"
	}
	obj := named.Obj()
	if u, ok := r.unitsByType[obj]; ok {
		return u
	}
	var uf UnitFact
	if r.pass.ImportFact(FactNS, obj, &uf) {
		return uf.Unit
	}
	return ""
}

// UnitOfVar resolves a //rolosan:unit tag on a specific variable, field
// or constant declaration (package-local).
func (r *Result) UnitOfVar(v *types.Var) string {
	return r.unitsByVar[v]
}

// ---- cache ----

var cache struct {
	mu  sync.Mutex
	pkg *types.Package
	res *Result
}

// Compute returns the valueflow result for pass's package, computing it
// on first request and replaying the exported facts on cache hits (the
// three consuming analyzers share one result per package).
//
// The fact horizon stops at the module boundary: neither driver runs
// the analyzers over standard-library units (the standalone loader
// skips them, the unitchecker recognizes and skips them), so summaries
// exist only for module functions and both drivers resolve the same
// SummaryOf answers — which is what keeps their finding sets identical.
// Calls into the stdlib are still covered by the taint intrinsics,
// which are keyed by name, not by facts.
func Compute(pass *analysis.Pass) *Result {
	cache.mu.Lock()
	defer cache.mu.Unlock()
	if cache.pkg == pass.Pkg && cache.res != nil {
		cache.res.pass = pass
		cache.res.export(pass)
		return cache.res
	}
	res := compute(pass)
	cache.pkg, cache.res = pass.Pkg, res
	return res
}

// export (re-)publishes the package's facts through pass. ExportFact
// overwrites identically on repeat, so this is idempotent.
func (r *Result) export(pass *analysis.Pass) {
	for fn, s := range r.summaries {
		pass.ExportFact(FactNS, fn, s)
	}
	for tn, u := range r.unitsByType {
		pass.ExportFact(FactNS, tn, UnitFact{Unit: u})
	}
}
