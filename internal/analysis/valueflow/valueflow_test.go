package valueflow

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"github.com/rolo-storage/rolo/internal/analysis"
	"github.com/rolo-storage/rolo/internal/analysis/ssa"
)

// solveSrc type-checks src as a single-file package and runs the
// valueflow computation through the analyzer framework (so facts flow
// the way they do under the real drivers).
func solveSrc(t *testing.T, pkgpath, src string) *Result {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := analysis.NewInfo()
	conf := types.Config{}
	pkg, err := conf.Check(pkgpath, fset, []*ast.File{file}, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	unit := &analysis.Unit{Fset: fset, Files: []*ast.File{file}, Pkg: pkg, Info: info}
	var res *Result
	probe := &analysis.Analyzer{
		Name: "vfprobe",
		Doc:  "captures the valueflow result",
		Run: func(pass *analysis.Pass) error {
			res = Compute(pass)
			return nil
		},
	}
	if _, err := analysis.RunAnalyzers(unit, []*analysis.Analyzer{probe}); err != nil {
		t.Fatalf("run: %v", err)
	}
	if res == nil {
		t.Fatal("probe did not run")
	}
	return res
}

// funcResult finds the FuncResult of the named declared function.
func funcResult(t *testing.T, res *Result, name string) *FuncResult {
	t.Helper()
	for _, fr := range res.Funcs {
		if fr.Obj != nil && fr.Obj.Name() == name {
			return fr
		}
	}
	t.Fatalf("no FuncResult for %q", name)
	return nil
}

// summaryOf finds the summary of the named function.
func summaryOf(t *testing.T, res *Result, name string) *Summary {
	t.Helper()
	for fn, s := range res.summaries {
		if fn.Name() == name {
			return s
		}
	}
	t.Fatalf("no summary for %q", name)
	return nil
}

const errPrelude = `
type T struct{ n int }
type myErr struct{}
func (*myErr) Error() string { return "boom" }
`

func TestSummaryNonNilWhenNoErr(t *testing.T) {
	res := solveSrc(t, "p", `package p
`+errPrelude+`
func mk(ok bool) (*T, error) {
	if ok {
		return &T{}, nil
	}
	return nil, &myErr{}
}
`)
	s := summaryOf(t, res, "mk")
	if got := s.Results[0].Nilness; got != "maybe-nil" {
		t.Errorf("result 0 nilness = %q, want maybe-nil", got)
	}
	if !s.Results[0].NonNilWhenNoErr {
		t.Error("result 0 not marked non-nil on the no-error path")
	}
	if got := s.Results[1].Nilness; got != "maybe-nil" {
		t.Errorf("error result nilness = %q, want maybe-nil", got)
	}
}

func TestErrCheckRefinesPairedResult(t *testing.T) {
	src := `package p
` + errPrelude + `
func mk(ok bool) (*T, error) {
	if ok {
		return &T{}, nil
	}
	return nil, &myErr{}
}
func use(ok bool) int {
	v, err := mk(ok)
	if err != nil {
		return 0
	}
	return v.n
}
func unchecked(ok bool) int {
	v, _ := mk(ok)
	return v.n
}
`
	res := solveSrc(t, "p", src)

	fr := funcResult(t, res, "use")
	if len(fr.SSA.Derefs) != 1 {
		t.Fatalf("use: %d deref sites, want 1", len(fr.SSA.Derefs))
	}
	d := fr.SSA.Derefs[0]
	if got := fr.AbstractAt(d.Base, d.Block).Nil; got != NonNil {
		t.Errorf("v after err check: nilness %v, want NonNil", got)
	}

	fr = funcResult(t, res, "unchecked")
	d = fr.SSA.Derefs[0]
	a := fr.AbstractAt(d.Base, d.Block)
	if a.Nil != MaybeNil {
		t.Errorf("unchecked v: nilness %v, want MaybeNil", a.Nil)
	}
	if a.NilOrigin == "" {
		t.Error("unchecked v: no evidence wording")
	}
}

func TestNoReturnCallRefines(t *testing.T) {
	res := solveSrc(t, "p", `package p
`+errPrelude+`
func die(msg string) { panic(msg) }
func g(p *T) int {
	if p == nil {
		die("nil p")
	}
	return p.n
}
`)
	if s := summaryOf(t, res, "die"); !s.NeverReturns {
		t.Error("die not marked NeverReturns")
	}
	fr := funcResult(t, res, "g")
	d := fr.SSA.Derefs[0]
	if got := fr.AbstractAt(d.Base, d.Block).Nil; got != NonNil {
		t.Errorf("p after no-return guard: nilness %v, want NonNil", got)
	}
}

func TestIntervalSummary(t *testing.T) {
	res := solveSrc(t, "p", `package p
func clamp(n int) int {
	if n < 0 {
		return 0
	}
	if n > 10 {
		return 10
	}
	return n
}
`)
	s := summaryOf(t, res, "clamp")
	if s.Results[0].Lo == nil || *s.Results[0].Lo != 0 {
		t.Errorf("Lo = %v, want 0", s.Results[0].Lo)
	}
	if s.Results[0].Hi == nil || *s.Results[0].Hi != 10 {
		t.Errorf("Hi = %v, want 10", s.Results[0].Hi)
	}
}

func TestUnitDirectives(t *testing.T) {
	res := solveSrc(t, "p", `package p

//rolosan:unit bytes
type ByteCount int64

//rolosan:unit blocks
const PerBlock = 8

type hdr struct {
	//rolosan:unit sectors
	start int64
}

func pass(b ByteCount) ByteCount { return b }
`)
	s := summaryOf(t, res, "pass")
	if got := s.Params[0].Unit; got != "bytes" {
		t.Errorf("param unit = %q, want bytes", got)
	}
	if got := s.Results[0].Unit; got != "bytes" {
		t.Errorf("result unit = %q, want bytes", got)
	}
	var tn *types.TypeName
	for k := range res.unitsByType {
		if k.Name() == "ByteCount" {
			tn = k
		}
	}
	if tn == nil {
		t.Fatal("ByteCount not tagged")
	}
	found := false
	for obj, u := range res.unitsByObj {
		if obj.Name() == "start" && u == "sectors" {
			found = true
		}
	}
	if !found {
		t.Error("field directive not collected")
	}
	found = false
	for obj, u := range res.unitsByObj {
		if obj.Name() == "PerBlock" && u == "blocks" {
			found = true
		}
	}
	if !found {
		t.Error("const directive not collected")
	}
}

func TestTraceParseTaintReachesMakeBound(t *testing.T) {
	res := solveSrc(t, "demo/trace", `package trace
func ParseSize(s string) int { return len(s) * 2 }
func alloc(s string) []byte {
	n := ParseSize(s)
	return make([]byte, n)
}
`)
	fr := funcResult(t, res, "alloc")
	var site *ssa.BoundSite
	for _, b := range fr.SSA.Bounds {
		if b.Kind == ssa.MakeLen {
			site = b
		}
	}
	if site == nil {
		t.Fatal("no MakeLen bound site")
	}
	a := fr.AbstractAt(site.Val, site.Block)
	if a.Taint != "trace input" {
		t.Errorf("make size taint = %q, want trace input", a.Taint)
	}
	if a.IV.BoundedAbove() {
		t.Errorf("make size unexpectedly bounded: %v", a.IV)
	}
}

func TestBoundCheckClearsTaintAlarm(t *testing.T) {
	res := solveSrc(t, "demo/trace", `package trace
func ParseSize(s string) int { return len(s) * 2 }
func alloc(s string, limit int) []byte {
	n := ParseSize(s)
	if n > limit {
		n = limit
	}
	if n < 0 {
		n = 0
	}
	return make([]byte, n)
}
`)
	fr := funcResult(t, res, "alloc")
	var site *ssa.BoundSite
	for _, b := range fr.SSA.Bounds {
		if b.Kind == ssa.MakeLen {
			site = b
		}
	}
	if site == nil {
		t.Fatal("no MakeLen bound site")
	}
	a := fr.AbstractAt(site.Val, site.Block)
	if a.Taint == "" {
		t.Error("taint lost through the clamp")
	}
	if !a.IV.BoundedAbove() || !a.IV.BoundedBelow() {
		t.Errorf("clamped size not bounded: %v", a.IV)
	}
}

func TestCommaOkEvidence(t *testing.T) {
	src := `package p
` + errPrelude + `
func checked(ms map[string]*T) int {
	v, ok := ms["k"]
	if !ok {
		return 0
	}
	return v.n
}
func unchecked(ms map[string]*T) int {
	v, _ := ms["k"]
	return v.n
}
`
	res := solveSrc(t, "p", src)

	fr := funcResult(t, res, "checked")
	d := fr.SSA.Derefs[0]
	if got := fr.AbstractAt(d.Base, d.Block).Nil; got != NilTop {
		t.Errorf("checked lookup: nilness %v, want NilTop (evidence cleared)", got)
	}

	fr = funcResult(t, res, "unchecked")
	d = fr.SSA.Derefs[0]
	a := fr.AbstractAt(d.Base, d.Block)
	if a.Nil != MaybeNil {
		t.Errorf("unchecked lookup: nilness %v, want MaybeNil", a.Nil)
	}
}

func TestSwitchTagRefinesInterval(t *testing.T) {
	res := solveSrc(t, "p", `package p
func pick(n int) int {
	switch n {
	case 3:
		return n
	}
	return 0
}
`)
	s := summaryOf(t, res, "pick")
	if s.Results[0].Lo == nil || *s.Results[0].Lo != 0 || s.Results[0].Hi == nil || *s.Results[0].Hi != 3 {
		t.Errorf("result interval = [%v, %v], want [0, 3]", s.Results[0].Lo, s.Results[0].Hi)
	}
}

func TestLoopWideningConverges(t *testing.T) {
	res := solveSrc(t, "p", `package p
func sum(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += i
	}
	return s
}
`)
	sm := summaryOf(t, res, "sum")
	if sm.Results[0].Lo == nil || *sm.Results[0].Lo != 0 {
		t.Errorf("sum Lo = %v, want 0", sm.Results[0].Lo)
	}
	if sm.Results[0].Hi != nil {
		t.Errorf("sum Hi = %v, want unbounded", *sm.Results[0].Hi)
	}
}

func TestParamPrecondition(t *testing.T) {
	res := solveSrc(t, "p", `package p
`+errPrelude+`
func reads(p *T) int { return p.n }
func guards(p *T) int {
	if p == nil {
		return 0
	}
	return p.n
}
`)
	if s := summaryOf(t, res, "reads"); !s.Params[0].NonNilRequired {
		t.Error("reads: parameter precondition not recorded")
	}
	if s := summaryOf(t, res, "guards"); s.Params[0].NonNilRequired {
		t.Error("guards: guarded deref wrongly recorded as precondition")
	}
}

func TestGuardedAbstract(t *testing.T) {
	res := solveSrc(t, "p", `package p
`+errPrelude+`
func f(p *T) bool {
	return p != nil && p.n > 0
}
`)
	fr := funcResult(t, res, "f")
	if len(fr.SSA.Derefs) != 1 {
		t.Fatalf("%d derefs, want 1", len(fr.SSA.Derefs))
	}
	d := fr.SSA.Derefs[0]
	if len(d.Guards) != 1 {
		t.Fatalf("%d guards, want 1", len(d.Guards))
	}
	c := &computer{pass: res.pass, res: res}
	if got := c.guardedAbstract(fr, d.Base, d.Block, d.Guards).Nil; got != NonNil {
		t.Errorf("guarded deref base: nilness %v, want NonNil", got)
	}
}

func TestUnitFlowsThroughConversion(t *testing.T) {
	res := solveSrc(t, "p", `package p

//rolosan:unit bytes
type ByteCount int64

func launder(b ByteCount) int64 {
	return int64(b)
}
`)
	s := summaryOf(t, res, "launder")
	if got := s.Results[0].Unit; got != "bytes" {
		t.Errorf("laundered unit = %q, want bytes (survives conversion)", got)
	}
}

// TestLoopLatchPhiStaysPrecise pins the φ-bottom semantics: a value
// defined before two sequential loops reads through self-referential
// loop-latch φs, which must not poison the join (the latch operand
// restates the φ itself). Regression: the summary used to lose
// NonNilWhenNoErr for exactly array.New's shape.
func TestLoopLatchPhiStaysPrecise(t *testing.T) {
	res := solveSrc(t, "p", `package p
`+errPrelude+`
func mk(i int) (*T, error) {
	if i < 0 {
		return nil, &myErr{}
	}
	return &T{}, nil
}

func build(pairs int) (*T, error) {
	a := &T{}
	for i := 0; i < pairs; i++ {
		d, err := mk(i)
		if err != nil {
			return nil, err
		}
		a.n += d.n
	}
	for i := 0; i < pairs; i++ {
		d, err := mk(i)
		if err != nil {
			return nil, err
		}
		a.n += d.n
	}
	return a, nil
}
`)
	s := summaryOf(t, res, "build")
	if len(s.Results) != 2 || !s.Results[0].NonNilWhenNoErr {
		t.Fatalf("build: want NonNilWhenNoErr on result 0, got %+v", s.Results)
	}
}

// TestMultiResultErrCheckRefinesSiblings pins the any-arity refineErrPair:
// for a (A, B, C, error) callee, `if err != nil { return }` proves every
// sibling result its summary marks NonNilWhenNoErr. Regression: the
// refinement used to be hard-wired to two-result (T, error) shapes.
func TestMultiResultErrCheckRefinesSiblings(t *testing.T) {
	res := solveSrc(t, "p", `package p
`+errPrelude+`
func three(ok bool) (*T, *T, error) {
	if !ok {
		return nil, nil, &myErr{}
	}
	return &T{}, &T{}, nil
}

func use(ok bool) int {
	x, y, err := three(ok)
	if err != nil {
		return 0
	}
	return x.n + y.n
}
`)
	fr := funcResult(t, res, "use")
	for _, d := range fr.SSA.Derefs {
		a := res.SiteAbstract(fr, d.Base, d.Block, d.Guards)
		if a.Nil != NonNil {
			t.Errorf("deref of %v at %v: want nonnil after err check, got %v (%s)",
				d.What, d.Expr.Pos(), a.Nil, a.NilOrigin)
		}
	}
}

// TestDeferredClosureWriteKeepsTracking pins the capture rule for
// deferred literals: `defer func() { err = ... }()` writes err at
// function exit, after every load in the body, so err stays tracked and
// the err-check refinement still proves the sibling result non-nil.
// Regression: any reference under any literal used to untrack.
func TestDeferredClosureWriteKeepsTracking(t *testing.T) {
	res := solveSrc(t, "p", `package p
`+errPrelude+`
func mk(ok bool) (*T, error) {
	if !ok {
		return nil, &myErr{}
	}
	return &T{}, nil
}

func run(ok bool) (n int, err error) {
	defer func() {
		if err != nil {
			err = &myErr{}
		}
	}()
	x, err := mk(ok)
	if err != nil {
		return 0, err
	}
	return x.n, nil
}
`)
	fr := funcResult(t, res, "run")
	for _, d := range fr.SSA.Derefs {
		a := res.SiteAbstract(fr, d.Base, d.Block, d.Guards)
		if a.Nil != NonNil {
			t.Errorf("deref of %v: want nonnil after err check, got %v (%s)",
				d.What, a.Nil, a.NilOrigin)
		}
	}
}

// TestReadOnlyCaptureKeepsTracking pins the other half of the capture
// rule: a literal that merely reads a variable cannot change it between
// the outer body's statements, so the variable stays tracked; a literal
// that writes it still untracks.
func TestReadOnlyCaptureKeepsTracking(t *testing.T) {
	res := solveSrc(t, "p", `package p
`+errPrelude+`
func reads() (int, func() int) {
	x := &T{}
	f := func() int { return x.n }
	return x.n, f
}

func writes() int {
	x := &T{}
	f := func() { x = nil }
	f()
	return x.n
}
`)
	fr := funcResult(t, res, "reads")
	for _, d := range fr.SSA.Derefs {
		if a := res.SiteAbstract(fr, d.Base, d.Block, d.Guards); a.Nil != NonNil {
			t.Errorf("reads: read-only captured x: want NonNil, got %v (%s)", a.Nil, a.NilOrigin)
		}
	}
	fw := funcResult(t, res, "writes")
	for _, d := range fw.SSA.Derefs {
		if d.What != "field access" {
			continue // the f() call deref's base is the literal itself
		}
		if a := res.SiteAbstract(fw, d.Base, d.Block, d.Guards); a.Nil == NonNil {
			t.Errorf("writes: closure-written x must not stay provably non-nil")
		}
	}
}
