package valueflow

// This file runs the computation: per-package orchestration (bottom-up
// over call-graph SCCs), the dense edge-refinement pass, the abstract
// fixpoint over registers, and summary extraction from return sites.

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"math"

	"github.com/rolo-storage/rolo/internal/analysis"
	"github.com/rolo-storage/rolo/internal/analysis/callgraph"
	"github.com/rolo-storage/rolo/internal/analysis/cfg"
	"github.com/rolo-storage/rolo/internal/analysis/ssa"
)

type computer struct {
	pass *analysis.Pass
	res  *Result
}

func compute(pass *analysis.Pass) *Result {
	res := &Result{
		summaries:   make(map[*types.Func]*Summary),
		unitsByType: make(map[*types.TypeName]string),
		unitsByVar:  make(map[*types.Var]string),
		unitsByObj:  make(map[types.Object]string),
		pass:        pass,
	}
	c := &computer{pass: pass, res: res}
	c.scanUnits()

	// Solve bottom-up so intra-package callees refine their callers; the
	// public Funcs list stays in declaration order for the analyzers.
	cg := callgraph.Build(pass.Files, pass.TypesInfo)
	solved := make(map[*types.Func]*FuncResult)
	lits := make(map[*types.Func][]*FuncResult)
	for _, scc := range cg.SCCs() {
		for _, node := range scc {
			fr := c.solveFunc(node.Decl)
			if fr == nil {
				continue
			}
			fr.Obj = node.Func
			solved[node.Func] = fr
			if !fr.SSA.Unanalyzable {
				res.summaries[node.Func] = c.summarize(fr)
			}
			lits[node.Func] = c.solveLits(fr.SSA)
		}
	}
	for _, node := range cg.All() {
		if fr, ok := solved[node.Func]; ok {
			res.Funcs = append(res.Funcs, fr)
			res.Funcs = append(res.Funcs, lits[node.Func]...)
		}
	}
	res.export(pass)
	return res
}

// solveLits builds and solves the nested function literals of f,
// recursively.
func (c *computer) solveLits(f *ssa.Func) []*FuncResult {
	var out []*FuncResult
	for _, lit := range f.Lits {
		fr := c.solveFunc(lit)
		if fr == nil {
			continue
		}
		out = append(out, fr)
		out = append(out, c.solveLits(fr.SSA)...)
	}
	return out
}

// solveFunc builds the SSA form of node and runs the lattice on it.
func (c *computer) solveFunc(node ast.Node) *FuncResult {
	f := ssa.Build(c.pass.TypesInfo, node)
	if f == nil {
		return nil
	}
	fr := &FuncResult{SSA: f, callOf: make(map[*ssa.Value]*ssa.CallSite)}
	if f.Unanalyzable {
		return fr
	}
	for _, cs := range f.Calls {
		fr.callOf[cs.Result] = cs
	}
	c.refinePass(fr)
	c.solveAbs(fr)
	return fr
}

// ---- dense refinement pass ----

func (c *computer) refinePass(fr *FuncResult) {
	f := fr.SSA
	n := len(f.Blocks)
	fr.in = make([]RefMap, n)
	fr.edgeIn = make([][]RefMap, n)
	fr.terminated = make([]bool, n)
	for i, blk := range f.Blocks {
		fr.edgeIn[i] = make([]RefMap, len(blk.Preds))
		fr.terminated[i] = c.blockTerminates(blk)
	}

	// slotOf[b][k]: index in the target's Preds of block b's k'th edge.
	// Preds were appended by mirrorBlocks in (block, succ) order.
	slotOf := make([][]int, n)
	fill := make([]int, n)
	for _, blk := range f.Blocks {
		slotOf[blk.Index] = make([]int, len(blk.CFG.Succs))
		for k, e := range blk.CFG.Succs {
			slotOf[blk.Index][k] = fill[e.To.Index]
			fill[e.To.Index]++
		}
	}

	fr.in[f.Entry.Index] = RefMap{}
	for round := 0; round < 64; round++ {
		changed := false
		for _, blk := range f.Blocks {
			bi := blk.Index
			if fr.in[bi] == nil || fr.terminated[bi] {
				continue
			}
			for k, e := range blk.CFG.Succs {
				out := fr.in[bi].clone()
				c.interpretEdge(fr, e, out)
				ti := e.To.Index
				fr.edgeIn[ti][slotOf[bi][k]] = out
				// Recompute the target's entry state as the join over its
				// reached in-edges.
				var merged RefMap
				for _, em := range fr.edgeIn[ti] {
					if em == nil {
						continue
					}
					if merged == nil {
						merged = em.clone()
					} else {
						merged = joinRefMap(merged, em)
					}
				}
				if merged != nil && (fr.in[ti] == nil || !equalRef(fr.in[ti], merged)) {
					fr.in[ti] = merged
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
}

// blockTerminates reports whether the block contains a statement-level
// call to a function that never returns, cutting the paths through it.
func (c *computer) blockTerminates(blk *ssa.Block) bool {
	for _, s := range blk.CFG.Stmts {
		es, ok := s.(*ast.ExprStmt)
		if !ok {
			continue
		}
		call, ok := ast.Unparen(es.X).(*ast.CallExpr)
		if !ok {
			continue
		}
		callee := callgraph.StaticCallee(c.pass.TypesInfo, call)
		if callee == nil {
			continue
		}
		if s := c.res.SummaryOf(callee); s != nil && s.NeverReturns {
			return true
		}
	}
	return false
}

func (fr *FuncResult) reg(e ast.Expr) *ssa.Value {
	if v, ok := fr.SSA.ExprValue[e]; ok {
		return v
	}
	return fr.SSA.ExprValue[ast.Unparen(e)]
}

func (c *computer) interpretEdge(fr *FuncResult, e cfg.Edge, out RefMap) {
	switch {
	case e.If != nil:
		c.interpretCond(fr, e.If, e.Branch > 0, out)
	case e.Cond != nil:
		c.interpretSwitchCond(fr, e.Cond, out)
	}
}

// interpretSwitchCond handles the normalized `tag ∈/∉ {vals}` conditions
// the CFG places on switch dispatch edges. Case values are never emitted
// as statements, so they are read syntactically, not through registers.
func (c *computer) interpretSwitchCond(fr *FuncResult, cond *cfg.Cond, out RefMap) {
	v := fr.reg(cond.Expr)
	if v == nil {
		return
	}
	// Only single-value conditions carry usable information here: a
	// one-case match is an equality, and a default edge excludes nil
	// only when nil is the sole candidate.
	if len(cond.Vals) == 1 {
		c.refineBySyntaxVal(fr, v, cond.Vals[0], !cond.Negated, out)
	}
}

// interpretCond narrows registers assuming cond evaluates to sense.
func (c *computer) interpretCond(fr *FuncResult, cond ast.Expr, sense bool, out RefMap) {
	cond = ast.Unparen(cond)
	switch e := cond.(type) {
	case *ast.UnaryExpr:
		if e.Op == token.NOT {
			c.interpretCond(fr, e.X, !sense, out)
		}
		return
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LAND:
			if sense {
				c.interpretCond(fr, e.X, true, out)
				c.interpretCond(fr, e.Y, true, out)
			}
			return
		case token.LOR:
			if !sense {
				c.interpretCond(fr, e.X, false, out)
				c.interpretCond(fr, e.Y, false, out)
			}
			return
		case token.EQL, token.NEQ:
			isEq := (e.Op == token.EQL) == sense
			// Boolean equality recurses: `ok == false` is `!ok`.
			if b, ok := c.syntaxBool(e.Y); ok {
				c.interpretCond(fr, e.X, isEq == b, out)
				return
			}
			if b, ok := c.syntaxBool(e.X); ok {
				c.interpretCond(fr, e.Y, isEq == b, out)
				return
			}
			if vx := fr.reg(e.X); vx != nil {
				c.refineBySyntaxVal(fr, vx, e.Y, isEq, out)
			}
			if vy := fr.reg(e.Y); vy != nil {
				c.refineBySyntaxVal(fr, vy, e.X, isEq, out)
			}
			return
		case token.LSS, token.LEQ, token.GTR, token.GEQ:
			c.interpretRel(fr, e, sense, out)
			return
		}
		return
	}
	// A bare boolean register: the comma-ok idiom.
	if v := fr.reg(cond); v != nil {
		c.refineOkBool(fr, v, sense, out)
	}
}

// refineOkBool narrows the partner of a comma-ok boolean.
func (c *computer) refineOkBool(fr *FuncResult, v *ssa.Value, sense bool, out RefMap) {
	if v.Kind != ssa.Extract || v.CommaOk == ssa.NotCommaOk || v.Index != 1 || v.Pair == nil {
		return
	}
	pair := v.Pair
	if sense {
		// The lookup/assert/receive succeeded: the checked pattern is
		// satisfied, but a stored or typed nil is still possible, so only
		// the evidence is dropped.
		addRefine(out, pair, Refine{ClearEvidence: true})
		return
	}
	// Failed: the partner is the zero value.
	r := Refine{}
	if isNilable(pair.Type) {
		r.HasNil, r.Nil = true, IsNil
	}
	if isInteger(pair.Type) {
		r.HasIV, r.IV = true, pointInterval(0)
	}
	addRefine(out, pair, r)
}

// syntaxBool reports the value of a constant boolean expression.
func (c *computer) syntaxBool(e ast.Expr) (bool, bool) {
	tv, ok := c.pass.TypesInfo.Types[ast.Unparen(e)]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Bool {
		return false, false
	}
	return constant.BoolVal(tv.Value), true
}

// refineBySyntaxVal narrows v given v ==/!= y, where y is read from the
// type checker (a nil literal or constant; anything else is ignored).
func (c *computer) refineBySyntaxVal(fr *FuncResult, v *ssa.Value, y ast.Expr, isEq bool, out RefMap) {
	if v == nil {
		return
	}
	tv, ok := c.pass.TypesInfo.Types[ast.Unparen(y)]
	if !ok {
		return
	}
	switch {
	case tv.IsNil():
		if isEq {
			addRefine(out, v, Refine{HasNil: true, Nil: IsNil})
		} else {
			addRefine(out, v, Refine{HasNil: true, Nil: NonNil})
		}
		c.refineErrPair(fr, v, isEq, out)
	case tv.Value != nil && (tv.Value.Kind() == constant.Int || tv.Value.Kind() == constant.Float):
		if i, ok := constant.Int64Val(constant.ToInt(tv.Value)); ok && isEq {
			addRefine(out, v, Refine{HasIV: true, IV: pointInterval(i)})
		}
	}
}

// refineErrPair propagates an error-nilness verdict to the sibling value
// results: when the callee's summary proves a result non-nil on the no-
// error path, `if err != nil { return }` establishes it for the caller.
// The error must be the callee's last result, whatever the arity.
func (c *computer) refineErrPair(fr *FuncResult, errv *ssa.Value, errIsNil bool, out RefMap) {
	if !errIsNil || errv.Kind != ssa.Extract || errv.CommaOk != ssa.NotCommaOk ||
		len(errv.Args) == 0 {
		return
	}
	cs := fr.callOf[errv.Args[0]]
	if cs == nil {
		return
	}
	s := c.res.SummaryOf(cs.Callee)
	if s == nil || errv.Index != len(s.Results)-1 {
		return
	}
	refine := func(rv *ssa.Value) {
		if rv == nil || rv == errv || rv.Index >= len(s.Results) {
			return
		}
		if s.Results[rv.Index].NonNilWhenNoErr {
			addRefine(out, rv, Refine{HasNil: true, Nil: NonNil})
		}
	}
	refine(errv.Pair)
	for _, rv := range cs.Results {
		refine(rv)
	}
}

// interpretRel narrows intervals for <, <=, >, >=.
func (c *computer) interpretRel(fr *FuncResult, e *ast.BinaryExpr, sense bool, out RefMap) {
	op := e.Op
	if !sense {
		switch op {
		case token.LSS:
			op = token.GEQ
		case token.LEQ:
			op = token.GTR
		case token.GTR:
			op = token.LEQ
		case token.GEQ:
			op = token.LSS
		}
	}
	vx, vy := fr.reg(e.X), fr.reg(e.Y)
	cx, okx := constInt(vx)
	cy, oky := constInt(vy)
	switch {
	case oky && vx != nil:
		addRefine(out, vx, relRefine(op, cy))
	case okx && vy != nil:
		// c op y reads as y (flipped op) c.
		addRefine(out, vy, relRefine(flipRel(op), cx))
	case vx != nil || vy != nil:
		// A dynamic bound: no numeric value, but the comparison itself is
		// the bound check taintbounds looks for.
		switch op {
		case token.LSS, token.LEQ:
			addRefine(out, vx, Refine{HasIV: true, IV: Interval{Lo: NegInf, Hi: PosInf, HiChecked: true}})
			addRefine(out, vy, Refine{HasIV: true, IV: Interval{Lo: NegInf, Hi: PosInf, LoChecked: true}})
		case token.GTR, token.GEQ:
			addRefine(out, vx, Refine{HasIV: true, IV: Interval{Lo: NegInf, Hi: PosInf, LoChecked: true}})
			addRefine(out, vy, Refine{HasIV: true, IV: Interval{Lo: NegInf, Hi: PosInf, HiChecked: true}})
		}
	}
}

func relRefine(op token.Token, c int64) Refine {
	iv := Top
	switch op {
	case token.LSS:
		iv.Hi = satAdd(c, -1)
	case token.LEQ:
		iv.Hi = c
	case token.GTR:
		iv.Lo = satAdd(c, 1)
	case token.GEQ:
		iv.Lo = c
	}
	return Refine{HasIV: true, IV: iv}
}

func flipRel(op token.Token) token.Token {
	switch op {
	case token.LSS:
		return token.GTR
	case token.LEQ:
		return token.GEQ
	case token.GTR:
		return token.LSS
	case token.GEQ:
		return token.LEQ
	}
	return op
}

func addRefine(out RefMap, v *ssa.Value, r Refine) {
	if v == nil {
		return
	}
	old := out[v]
	if r.HasNil {
		old.HasNil, old.Nil = true, r.Nil
	}
	old.ClearEvidence = old.ClearEvidence || r.ClearEvidence
	if r.HasIV {
		if old.HasIV {
			old.IV = meetInterval(old.IV, r.IV)
		} else {
			old.HasIV, old.IV = true, r.IV
		}
	}
	out[v] = old
}

func constInt(v *ssa.Value) (int64, bool) {
	if v == nil || v.Kind != ssa.Const || v.ConstVal == nil {
		return 0, false
	}
	if v.ConstVal.Kind() != constant.Int && v.ConstVal.Kind() != constant.Float {
		return 0, false
	}
	return constant.Int64Val(constant.ToInt(v.ConstVal))
}

// SiteAbstract returns v's abstract at a site in blk, refined by the
// site's short-circuit guard context (`p != nil && use(*p)` shapes) —
// the analyzers' entry point for judging deref and bound sites.
func (r *Result) SiteAbstract(fr *FuncResult, v *ssa.Value, blk *ssa.Block, guards []ssa.Guard) Abstract {
	c := &computer{pass: r.pass, res: r}
	return c.guardedAbstract(fr, v, blk, guards)
}

// guardedAbstract returns v's abstract at the site, refined by the site's
// short-circuit guard context (`p != nil && use(*p)` shapes).
func (c *computer) guardedAbstract(fr *FuncResult, v *ssa.Value, blk *ssa.Block, guards []ssa.Guard) Abstract {
	a := fr.AbstractAt(v, blk)
	if len(guards) == 0 {
		return a
	}
	out := RefMap{}
	for _, g := range guards {
		c.interpretCond(fr, g.Cond, g.Sense, out)
	}
	if r, ok := out[v]; ok {
		a = r.apply(a)
	}
	return a
}

// ---- abstract fixpoint ----

func (c *computer) solveAbs(fr *FuncResult) {
	f := fr.SSA
	fr.abs = make([]Abstract, len(f.Values))
	fr.absSet = make([]bool, len(f.Values))
	const widenAfter = 4
	for round := 0; round < 64; round++ {
		changed := false
		for _, v := range f.Values {
			if v.Kind == ssa.Phi && !c.phiReady(fr, v) {
				continue // all operands still bottom: stay bottom
			}
			na := c.transfer(fr, v)
			if fr.absSet[v.ID] {
				old := fr.abs[v.ID]
				if na == old {
					continue
				}
				if round >= widenAfter {
					// Widen growing intervals so loop counters converge.
					if na.IV.Lo < old.IV.Lo {
						na.IV.Lo = NegInf
					}
					if na.IV.Hi > old.IV.Hi {
						na.IV.Hi = PosInf
					}
					if na == old {
						continue
					}
				}
			}
			fr.abs[v.ID] = na
			fr.absSet[v.ID] = true
			changed = true
		}
		if !changed {
			break
		}
	}
}

func (c *computer) argAbs(fr *FuncResult, v *ssa.Value) Abstract {
	if v == nil || !fr.absSet[v.ID] {
		return unknownAbs("")
	}
	return fr.abs[v.ID]
}

func (c *computer) transfer(fr *FuncResult, v *ssa.Value) Abstract {
	unit := c.unitForValue(v)
	switch v.Kind {
	case ssa.Param, ssa.Unknown, ssa.Load:
		a := unknownAbs(unit)
		if v.Kind == ssa.Load && len(v.Args) > 0 {
			// Loads out of tainted containers stay tainted: *flagPtr,
			// record[i], parsedMap[k].
			base := c.argAbs(fr, v.Args[0])
			a.Taint, a.TaintPos = base.Taint, base.TaintPos
		}
		return a
	case ssa.Zero:
		a := unknownAbs(unit)
		if isNilable(v.Type) {
			a.Nil, a.NilOrigin = IsNil, "zero value"
		}
		if isInteger(v.Type) {
			a.IV = pointInterval(0)
		}
		return a
	case ssa.Const:
		a := unknownAbs(unit)
		if v.ConstVal != nil {
			switch v.ConstVal.Kind() {
			case constant.Int, constant.Float:
				if i, ok := constant.Int64Val(constant.ToInt(v.ConstVal)); ok {
					a.IV = pointInterval(i)
				}
			case constant.String:
				a.IV = pointInterval(int64(len(constant.StringVal(v.ConstVal))))
			}
		}
		return a
	case ssa.NilConst:
		a := unknownAbs(unit)
		a.Nil, a.NilOrigin = IsNil, "nil constant"
		return a
	case ssa.Phi:
		return c.phiAbs(fr, v, unit)
	case ssa.Call:
		return c.callAbs(fr, v, unit)
	case ssa.Extract:
		return c.extractAbs(fr, v, unit)
	case ssa.BinOp:
		return c.binAbs(fr, v, unit)
	case ssa.UnOp:
		x := c.argAbs(fr, v.Args[0])
		a := unknownAbs(unit)
		if v.Op == token.SUB {
			a.IV = Interval{Lo: satNeg(x.IV.Hi), Hi: satNeg(x.IV.Lo)}
		}
		if a.Unit == "" {
			a.Unit = x.Unit
		}
		a.Taint, a.TaintPos = x.Taint, x.TaintPos
		return a
	case ssa.Convert:
		x := c.argAbs(fr, v.Args[0])
		a := x
		// A flowing unit survives the conversion — the laundering case —
		// otherwise the declared target type names the unit.
		if a.Unit == "" {
			a.Unit = unit
		}
		a.IV = clampToType(a.IV, v.Type)
		return a
	case ssa.Alloc:
		a := unknownAbs(unit)
		a.Nil, a.NilOrigin = NonNil, ""
		if len(v.Args) > 0 && v.Args[0] != nil {
			// make: the length interval (and its taint) is the size's.
			size := c.argAbs(fr, v.Args[0])
			a.IV = size.IV
			a.Taint, a.TaintPos = size.Taint, size.TaintPos
		}
		return a
	case ssa.RangeVar:
		return c.rangeAbs(fr, v, unit)
	case ssa.Assert:
		x := c.argAbs(fr, v.Args[0])
		a := unknownAbs(unit)
		a.Taint, a.TaintPos = x.Taint, x.TaintPos
		return a
	case ssa.SliceOp:
		return c.sliceAbs(fr, v, unit)
	case ssa.LenOf:
		x := c.argAbs(fr, v.Args[0])
		a := unknownAbs(unit)
		a.IV = Interval{Lo: max(0, x.IV.Lo), Hi: x.IV.Hi, HiChecked: x.IV.HiChecked}
		if a.IV.Hi < 0 {
			a.IV.Hi = 0
		}
		a.Taint, a.TaintPos = x.Taint, x.TaintPos
		return a
	}
	return unknownAbs(unit)
}

// phiReady reports whether any operand can contribute to the φ's join: a
// set register other than the φ itself, arriving over a reached edge.
// Until then the φ stays bottom — seeding it "unknown" would poison its
// own join through loop latches (join(nonnil, unknown) = unknown sticks).
func (c *computer) phiReady(fr *FuncResult, v *ssa.Value) bool {
	edges := fr.edgeIn[v.Block.Index]
	for i, op := range v.Args {
		if op == nil || op == v || !fr.absSet[op.ID] {
			continue
		}
		if i < len(edges) && edges[i] == nil {
			continue
		}
		return true
	}
	return false
}

func (c *computer) phiAbs(fr *FuncResult, v *ssa.Value, unit string) Abstract {
	var out Abstract
	first := true
	edges := fr.edgeIn[v.Block.Index]
	for i, op := range v.Args {
		if op == nil || op == v || !fr.absSet[op.ID] {
			// A self-operand restates the φ along the loop latch and
			// contributes nothing new to the join.
			continue
		}
		if i < len(edges) && edges[i] == nil {
			continue // in-edge never reached: the operand does not flow
		}
		a := fr.abs[op.ID]
		if i < len(edges) {
			if r, ok := edges[i][op]; ok {
				a = r.apply(a)
			}
		}
		if first {
			out, first = a, false
		} else {
			out = joinAbs(out, a)
		}
	}
	if first {
		return unknownAbs(unit)
	}
	if out.Unit == "" {
		out.Unit = unit
	}
	return out
}

func (c *computer) callAbs(fr *FuncResult, v *ssa.Value, unit string) Abstract {
	a := unknownAbs(unit)
	cs := fr.callOf[v]
	if cs == nil {
		return a
	}
	s := c.res.SummaryOf(cs.Callee)
	if s != nil && len(s.Results) == 1 {
		a = c.resultAbs(s.Results[0], cs, 0, unit)
	}
	if cs.Callee != nil && propagatesTaint(cs.Callee) && a.Taint == "" {
		a.Taint, a.TaintPos = c.argsTaint(fr, cs)
	}
	return a
}

func (c *computer) argsTaint(fr *FuncResult, cs *ssa.CallSite) (string, string) {
	if cs.Recv != nil {
		if r := c.argAbs(fr, cs.Recv); r.Taint != "" {
			return r.Taint, r.TaintPos
		}
	}
	for _, arg := range cs.Args {
		if a := c.argAbs(fr, arg); a.Taint != "" {
			return a.Taint, a.TaintPos
		}
	}
	return "", ""
}

// resultAbs turns one ResultSummary into an abstract at a call site.
func (c *computer) resultAbs(rs ResultSummary, cs *ssa.CallSite, idx int, unit string) Abstract {
	a := unknownAbs(unit)
	switch rs.Nilness {
	case "nonnil":
		a.Nil = NonNil
	case "nil":
		a.Nil, a.NilOrigin = IsNil, rs.NilOrigin
	case "maybe-nil":
		a.Nil = MaybeNil
		a.NilOrigin = rs.NilOrigin
		if a.NilOrigin == "" {
			a.NilOrigin = "may be nil"
		}
		if cs.Callee != nil {
			a.NilOrigin = cs.Callee.Name() + ": " + a.NilOrigin
		}
	}
	if rs.Lo != nil {
		a.IV.Lo = *rs.Lo
	}
	if rs.Hi != nil {
		a.IV.Hi = *rs.Hi
	}
	if rs.Unit != "" {
		a.Unit = rs.Unit
	}
	if rs.Taint != "" {
		a.Taint = rs.Taint
		if cs.Callee != nil {
			a.TaintPos = c.pass.Fset.Position(cs.Site.Pos()).String()
		}
	}
	return a
}

func (c *computer) extractAbs(fr *FuncResult, v *ssa.Value, unit string) Abstract {
	a := unknownAbs(unit)
	if len(v.Args) == 0 || v.Args[0] == nil {
		return a
	}
	root := v.Args[0]
	switch v.CommaOk {
	case ssa.MapOk, ssa.AssertOk:
		if v.Index == 0 {
			base := c.argAbs(fr, root)
			a.Taint, a.TaintPos = base.Taint, base.TaintPos
			if isNilable(v.Type) {
				a.Nil = MaybeNil
				if v.CommaOk == ssa.MapOk {
					a.NilOrigin = "zero value of a missed map lookup (ok not yet checked)"
				} else {
					a.NilOrigin = "zero value of a failed type assertion (ok not yet checked)"
				}
			}
		}
		return a
	case ssa.RecvOk:
		return a
	}
	if root.Kind == ssa.Call {
		cs := fr.callOf[root]
		if cs == nil {
			return a
		}
		s := c.res.SummaryOf(cs.Callee)
		if s != nil && v.Index < len(s.Results) {
			a = c.resultAbs(s.Results[v.Index], cs, v.Index, unit)
		}
		if cs.Callee != nil && propagatesTaint(cs.Callee) && a.Taint == "" {
			a.Taint, a.TaintPos = c.argsTaint(fr, cs)
		}
	}
	return a
}

func (c *computer) binAbs(fr *FuncResult, v *ssa.Value, unit string) Abstract {
	x := c.argAbs(fr, v.Args[0])
	y := c.argAbs(fr, v.Args[1])
	a := unknownAbs(unit)
	switch v.Op {
	case token.ADD:
		a.IV = addInterval(x.IV, y.IV)
	case token.SUB:
		a.IV = subInterval(x.IV, y.IV)
	case token.MUL:
		if xi, ok := point(x.IV); ok {
			if yi, ok := point(y.IV); ok {
				a.IV = pointInterval(satMul(xi, yi))
			}
		}
	case token.REM:
		// x % c is within (-c, c), and within [0, c) for non-negative x —
		// the hash-mod-bucket idiom that bounds tainted indexes.
		if cy, ok := point(y.IV); ok && cy > 0 {
			if x.IV.Lo >= 0 {
				a.IV = Interval{Lo: 0, Hi: cy - 1}
			} else {
				a.IV = Interval{Lo: -(cy - 1), Hi: cy - 1}
			}
		}
	case token.AND:
		// Masking with a non-negative constant bounds the result.
		if cy, ok := point(y.IV); ok && cy >= 0 {
			a.IV = Interval{Lo: 0, Hi: cy}
		} else if cx, ok := point(x.IV); ok && cx >= 0 {
			a.IV = Interval{Lo: 0, Hi: cx}
		}
	}
	if a.Unit == "" {
		a.Unit = binUnit(v.Op, x.Unit, y.Unit)
	}
	a.Taint, a.TaintPos = x.Taint, x.TaintPos
	if a.Taint == "" {
		a.Taint, a.TaintPos = y.Taint, y.TaintPos
	}
	return a
}

// binUnit is the unit algebra of a binary operation (the transfer keeps
// flowing; unitflow reports the cross-unit cases separately).
func binUnit(op token.Token, x, y string) string {
	switch op {
	case token.ADD, token.SUB, token.REM, token.AND, token.OR, token.XOR, token.AND_NOT:
		if x == y {
			return x
		}
		if x == "" {
			return y
		}
		if y == "" {
			return x
		}
		return ""
	case token.MUL:
		if x != "" && y != "" {
			return "" // unit² — out of the algebra
		}
		if x != "" {
			return x
		}
		return y
	case token.QUO:
		if x == y {
			return "" // a ratio is dimensionless
		}
		if y == "" {
			return x
		}
		return ""
	case token.SHL, token.SHR:
		return x
	}
	return "" // comparisons, &&, ||
}

func point(iv Interval) (int64, bool) {
	if iv.Lo == iv.Hi && iv.Lo != NegInf && iv.Lo != PosInf {
		return iv.Lo, true
	}
	return 0, false
}

func satMul(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	p := a * b
	if p/b != a {
		if (a > 0) == (b > 0) {
			return PosInf
		}
		return NegInf
	}
	return p
}

func (c *computer) rangeAbs(fr *FuncResult, v *ssa.Value, unit string) Abstract {
	a := unknownAbs(unit)
	var op Abstract
	if len(v.Args) > 0 && v.Args[0] != nil {
		op = c.argAbs(fr, v.Args[0])
	} else {
		op = unknownAbs("")
	}
	if v.Index == 0 && isInteger(v.Type) {
		// A range key is always in bounds for its own collection: [0, n).
		a.IV = Interval{Lo: 0, Hi: satAdd(op.IV.Hi, -1), HiChecked: true}
		return a
	}
	// Element values inherit the collection's taint.
	a.Taint, a.TaintPos = op.Taint, op.TaintPos
	return a
}

func (c *computer) sliceAbs(fr *FuncResult, v *ssa.Value, unit string) Abstract {
	a := unknownAbs(unit)
	base := c.argAbs(fr, v.Args[0])
	a.Nil = base.Nil // s[lo:hi] of nil is nil-ish, but never flagged: no evidence transfer
	a.Nil = NilTop
	a.Taint, a.TaintPos = base.Taint, base.TaintPos
	// Length: bounded by the high index when present, else by the base.
	hiAbs := base
	if len(v.Args) > 2 && v.Args[2] != nil {
		hiAbs = c.argAbs(fr, v.Args[2])
		if hiAbs.Taint != "" && a.Taint == "" {
			a.Taint, a.TaintPos = hiAbs.Taint, hiAbs.TaintPos
		}
	}
	a.IV = Interval{Lo: 0, Hi: hiAbs.IV.Hi, HiChecked: hiAbs.IV.HiChecked}
	return a
}

// clampToType intersects iv with the representable range of integer type
// t (conversions truncate, so an unbounded source stays unbounded rather
// than gaining false bounds — only finite bounds survive a narrowing).
func clampToType(iv Interval, t types.Type) Interval {
	b, ok := t.Underlying().(*types.Basic)
	if !ok || b.Info()&types.IsInteger == 0 {
		return iv
	}
	var lo, hi int64
	switch b.Kind() {
	case types.Int8:
		lo, hi = math.MinInt8, math.MaxInt8
	case types.Int16:
		lo, hi = math.MinInt16, math.MaxInt16
	case types.Int32:
		lo, hi = math.MinInt32, math.MaxInt32
	case types.Uint8:
		lo, hi = 0, math.MaxUint8
	case types.Uint16:
		lo, hi = 0, math.MaxUint16
	case types.Uint32:
		lo, hi = 0, math.MaxUint32
	case types.Uint, types.Uint64, types.Uintptr:
		lo, hi = 0, PosInf
	default:
		return iv
	}
	// A source value outside the target range wraps, so the clamp is only
	// sound when the source already fits; otherwise drop to the type range.
	if iv.Lo >= lo && iv.Hi <= hi {
		return iv
	}
	return Interval{Lo: lo, Hi: hi}
}

func isNilable(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Chan, *types.Signature, *types.Slice, *types.Interface:
		return true
	}
	return false
}

func isInteger(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// ---- summaries ----

func (c *computer) summarize(fr *FuncResult) *Summary {
	f := fr.SSA
	s := &Summary{NeverReturns: c.neverReturns(fr)}
	s.Params = make([]ParamSummary, len(f.Params))
	for i, p := range f.Params {
		s.Params[i].Unit = c.unitForValue(p)
	}
	// A dereference in the entry block runs before any guard can: the
	// parameter is a precondition.
	for _, d := range f.Derefs {
		if d.Base != nil && d.Base.Kind == ssa.Param && d.Block == f.Entry &&
			len(d.Guards) == 0 && isNilable(d.Base.Type) {
			s.Params[d.Base.Index].NonNilRequired = true
		}
	}

	nres := f.Sig.Results().Len()
	if nres == 0 {
		return s
	}
	joined := make([]Abstract, nres)
	have := make([]bool, nres)
	nonnilOK := make([]bool, nres)
	for i := range nonnilOK {
		nonnilOK[i] = true
	}
	errIdx := -1
	if nres >= 2 && isErrType(f.Sig.Results().At(nres-1).Type()) {
		errIdx = nres - 1
	}
	sawNoErrPath := false
	for _, rs := range f.Returns {
		if !fr.Reached(rs.Block) {
			continue
		}
		for i, val := range rs.Vals {
			if i >= nres || val == nil {
				continue
			}
			a := fr.AbstractAt(val, rs.Block)
			if have[i] {
				joined[i] = joinAbs(joined[i], a)
			} else {
				joined[i], have[i] = a, true
			}
		}
		if errIdx >= 0 && errIdx < len(rs.Vals) && rs.Vals[errIdx] != nil {
			errAbs := fr.AbstractAt(rs.Vals[errIdx], rs.Block)
			if errAbs.Nil != NonNil { // this return may report success
				sawNoErrPath = true
				for i := 0; i < errIdx; i++ {
					if i >= len(rs.Vals) || rs.Vals[i] == nil {
						nonnilOK[i] = false
						continue
					}
					if fr.AbstractAt(rs.Vals[i], rs.Block).Nil != NonNil {
						nonnilOK[i] = false
					}
				}
			}
		}
	}
	s.Results = make([]ResultSummary, nres)
	for i := range s.Results {
		if !have[i] {
			continue
		}
		a := joined[i]
		rs := &s.Results[i]
		if isNilable(f.Sig.Results().At(i).Type()) && a.Nil != NilTop {
			rs.Nilness = a.Nil.String()
			// Callers see this through resultAbs, prefixed with the callee
			// name; local wording like "nil constant" reads poorly there.
			if a.Nil == MaybeNil {
				rs.NilOrigin = "may return nil"
			}
		}
		if a.IV.Lo != NegInf {
			lo := a.IV.Lo
			rs.Lo = &lo
		}
		if a.IV.Hi != PosInf {
			hi := a.IV.Hi
			rs.Hi = &hi
		}
		rs.Unit = a.Unit
		rs.Taint = a.Taint
		if errIdx >= 0 && i < errIdx && sawNoErrPath && nonnilOK[i] &&
			isNilable(f.Sig.Results().At(i).Type()) {
			rs.NonNilWhenNoErr = true
		}
	}
	return s
}

// neverReturns reports whether no reachable path leaves the function
// normally: every exit panics or calls a no-return function (or the body
// loops forever).
func (c *computer) neverReturns(fr *FuncResult) bool {
	f := fr.SSA
	sawExit := false
	for _, blk := range f.Blocks {
		if !fr.Reached(blk) || fr.terminated[blk.Index] {
			continue
		}
		if len(blk.CFG.Succs) > 0 {
			continue
		}
		sawExit = true
		stmts := blk.CFG.Stmts
		if len(stmts) == 0 {
			return false // falls off the end
		}
		last := stmts[len(stmts)-1]
		if _, ok := last.(*ast.ReturnStmt); ok {
			return false
		}
		if !cfg.IsPanicStmt(last) {
			return false
		}
	}
	// A function with no terminal blocks at all spins forever; one whose
	// every terminal block panics never returns either. An empty entry
	// was handled above (no statements → falls off).
	_ = sawExit
	return true
}

func isErrType(t types.Type) bool {
	if t == nil {
		return false
	}
	it, ok := t.Underlying().(*types.Interface)
	if !ok {
		return false
	}
	return it.NumMethods() == 1 && it.Method(0).Name() == "Error"
}
