package valueflow

// Unit seeding. A unit is a short name ("time", "bytes", "blocks", ...)
// attached to a type, variable, constant, or struct field by a
// `//rolosan:unit <name>` directive; internal/sim.Time is seeded as
// "time" without a directive. Units flow through arithmetic in the
// transfer functions; the unitflow analyzer reports where two different
// known units meet.

import (
	"go/ast"
	"go/types"
	"strings"

	"github.com/rolo-storage/rolo/internal/analysis/ssa"
)

const unitDirective = "rolosan:unit"

// directiveUnit extracts the unit name from a comment group, if any.
func directiveUnit(cg *ast.CommentGroup) string {
	if cg == nil {
		return ""
	}
	for _, cm := range cg.List {
		text := strings.TrimPrefix(cm.Text, "//")
		if rest, ok := strings.CutPrefix(text, unitDirective+" "); ok {
			if u := strings.TrimSpace(rest); u != "" {
				return strings.Fields(u)[0]
			}
		}
	}
	return ""
}

func firstUnit(us ...string) string {
	for _, u := range us {
		if u != "" {
			return u
		}
	}
	return ""
}

// scanUnits walks the package's declarations collecting unit directives
// on types, vars, consts, and struct fields.
func (c *computer) scanUnits() {
	info := c.pass.TypesInfo
	for _, file := range c.pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			declU := directiveUnit(gd.Doc)
			for _, spec := range gd.Specs {
				switch sp := spec.(type) {
				case *ast.TypeSpec:
					u := firstUnit(directiveUnit(sp.Doc), directiveUnit(sp.Comment), declU)
					if u != "" {
						if tn, ok := info.Defs[sp.Name].(*types.TypeName); ok {
							c.res.unitsByType[tn] = u
						}
					}
					if st, ok := sp.Type.(*ast.StructType); ok {
						c.scanFields(st)
					}
				case *ast.ValueSpec:
					u := firstUnit(directiveUnit(sp.Doc), directiveUnit(sp.Comment), declU)
					if u == "" {
						continue
					}
					for _, name := range sp.Names {
						if obj := info.Defs[name]; obj != nil {
							c.res.unitsByObj[obj] = u
							if vr, ok := obj.(*types.Var); ok {
								c.res.unitsByVar[vr] = u
							}
						}
					}
				}
			}
		}
	}
}

func (c *computer) scanFields(st *ast.StructType) {
	info := c.pass.TypesInfo
	for _, field := range st.Fields.List {
		u := firstUnit(directiveUnit(field.Doc), directiveUnit(field.Comment))
		if u == "" {
			continue
		}
		for _, name := range field.Names {
			if obj := info.Defs[name]; obj != nil {
				c.res.unitsByObj[obj] = u
				if vr, ok := obj.(*types.Var); ok {
					c.res.unitsByVar[vr] = u
				}
			}
		}
	}
}

// unitForValue resolves the unit of a register: an object-level directive
// on the variable, constant, or field it reads wins over the unit of its
// declared type.
func (c *computer) unitForValue(v *ssa.Value) string {
	if v == nil {
		return ""
	}
	if v.Var != nil {
		if u := c.res.UnitOfVar(v.Var); u != "" {
			return u
		}
	}
	if v.Expr != nil {
		if u := c.unitForExpr(v.Expr); u != "" {
			return u
		}
	}
	return c.res.UnitOf(v.Type)
}

// unitForExpr looks up the directive unit of the object an expression
// names: a const or var ident, or a selected struct field.
func (c *computer) unitForExpr(e ast.Expr) string {
	info := c.pass.TypesInfo
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := info.Uses[e]; obj != nil {
			return c.objUnit(obj)
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok {
			return c.objUnit(sel.Obj())
		}
		if obj := info.Uses[e.Sel]; obj != nil {
			return c.objUnit(obj)
		}
	}
	return ""
}

// objUnit resolves an object's unit: local directive, or an imported
// UnitFact for cross-package constants and fields is not available (facts
// attach to types only), so imported objects fall back to their type.
func (c *computer) objUnit(obj types.Object) string {
	if u := c.res.unitsByObj[obj]; u != "" {
		return u
	}
	return ""
}
