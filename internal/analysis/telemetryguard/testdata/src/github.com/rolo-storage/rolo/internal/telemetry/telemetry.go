// Package telemetry is a fixture stub of the real telemetry package:
// just enough surface for the telemetryguard analyzer, which matches the
// *Recorder type by package-path suffix and so treats this stub exactly
// like the real thing.
package telemetry

// Event is a journal record (shape irrelevant to the analyzer).
type Event struct {
	At    int64
	Bytes int64
}

// Recorder mimics the nil-safe emission front end.
type Recorder struct{ enabled bool }

// Enabled is the guard method; calling it is always legal.
func (r *Recorder) Enabled() bool { return r != nil && r.enabled }

// Emit is an emission method.
func (r *Recorder) Emit(ev Event) {}

// RequestStart is an emission method.
func (r *Recorder) RequestStart(at int64, write bool, bytes int64) {}

// RequestDone is an emission method.
func (r *Recorder) RequestDone(at int64, write bool, latency int64) {}
