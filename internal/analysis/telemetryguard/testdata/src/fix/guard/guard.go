// Package guard exercises the telemetryguard analyzer: guarded and
// unguarded Recorder emissions.
package guard

import "github.com/rolo-storage/rolo/internal/telemetry"

type controller struct {
	tel *telemetry.Recorder
}

type engine struct{}

func (engine) After(d int64, fn func(now int64)) {}

func unguarded(c *controller) {
	c.tel.Emit(telemetry.Event{At: 1}) // want `unguarded telemetry emission c\.tel\.Emit`
	c.tel.RequestStart(0, false, 512)  // want `unguarded telemetry emission c\.tel\.RequestStart`
	_ = c.tel.Enabled()                // the guard method itself is fine
}

func guardedIf(c *controller) {
	if c.tel != nil {
		c.tel.Emit(telemetry.Event{At: 1}) // guarded: fine
	}
	if nil != c.tel {
		c.tel.RequestStart(0, true, 1) // reversed operands: fine
	}
	if c.tel != nil && true {
		c.tel.Emit(telemetry.Event{}) // conjunction keeps the guard: fine
	}
}

func guardedEnabled(c *controller) {
	if c.tel.Enabled() {
		c.tel.Emit(telemetry.Event{At: 2}) // Enabled() implies non-nil: fine
	}
}

func guardedEarlyReturn(c *controller) {
	if c.tel == nil {
		return
	}
	c.tel.RequestDone(5, false, 7) // dominated by the early return: fine
}

func guardedElse(c *controller) {
	if c.tel == nil {
		_ = c
	} else {
		c.tel.Emit(telemetry.Event{}) // else-branch of a nil check: fine
	}
}

func wrongGuard(c *controller, other *controller) {
	if other.tel != nil {
		c.tel.Emit(telemetry.Event{}) // want `unguarded telemetry emission c\.tel\.Emit`
	}
	if c.tel == nil {
		c.tel.Emit(telemetry.Event{}) // want `unguarded telemetry emission c\.tel\.Emit`
	}
}

func closureUnderGuard(c *controller, eng engine) {
	if c.tel != nil {
		// The recorder is wired once before the run; a closure scheduled
		// under the guard still sees a non-nil recorder when it fires.
		eng.After(3, func(now int64) {
			c.tel.RequestDone(now, true, 9) // fine
		})
	}
	eng.After(4, func(now int64) {
		c.tel.RequestDone(now, true, 9) // want `unguarded telemetry emission c\.tel\.RequestDone`
	})
}

func allowed(c *controller) {
	c.tel.Emit(telemetry.Event{}) //lint:allow telemetryguard:unguarded cold path, runs once per report
}
