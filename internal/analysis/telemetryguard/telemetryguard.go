// Package telemetryguard enforces PR 1's zero-overhead-when-disabled
// guarantee: every call to a *telemetry.Recorder emission method must be
// nil-guarded at the call site.
//
// The Recorder helpers are themselves nil-safe, but an unguarded call
// still evaluates its arguments and pays the call on the simulation hot
// path even when telemetry is disabled. The sanctioned shapes are:
//
//	if c.tel != nil {
//	        c.tel.RequestDone(now, isWrite, rt)
//	}
//
// an equivalent Enabled() guard:
//
//	if p.rec.Enabled() { p.rec.Emit(...) }
//
// or an early return earlier in the same block:
//
//	if c.tel == nil {
//	        return
//	}
//	...
//	c.tel.RequestStart(...)
//
// Enabled() itself is exempt (it is the guard). _test.go files are
// exempt: tests exercise the nil-safety deliberately.
package telemetryguard

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/rolo-storage/rolo/internal/analysis"
)

// Analyzer is the telemetryguard check.
var Analyzer = &analysis.Analyzer{
	Name: "telemetryguard",
	Doc:  "require nil guards around telemetry.Recorder emission calls",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		analysis.WalkStack(file, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn := analysis.CalleeFunc(pass.TypesInfo, call)
			if fn == nil || fn.Name() == "Enabled" {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Recv() == nil {
				return true
			}
			if !analysis.IsNamed(sig.Recv().Type(), "internal/telemetry", "Recorder") {
				return true
			}
			recv := types.ExprString(ast.Unparen(sel.X))
			if !guarded(pass, recv, call, stack) {
				pass.Reportf(call.Pos(), "unguarded",
					"unguarded telemetry emission %s.%s; wrap in `if %s != nil { ... }` to keep the disabled path free",
					recv, fn.Name(), recv)
			}
			return true
		})
	}
	return nil
}

// guarded reports whether the call site is dominated by a nil check of
// recv: an enclosing `if recv != nil` / `if recv.Enabled()` (call in the
// then-branch), an enclosing `if recv == nil` with the call in the else
// branch, or a preceding `if recv == nil { ... return/continue/... }`
// statement in an enclosing block.
func guarded(pass *analysis.Pass, recv string, call *ast.CallExpr, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch n := stack[i].(type) {
		case *ast.IfStmt:
			inBody := i+1 < len(stack) && stack[i+1] == n.Body
			inElse := n.Else != nil && i+1 < len(stack) && stack[i+1] == n.Else
			if inBody && condAsserts(n.Cond, recv, true) {
				return true
			}
			if inElse && condAsserts(n.Cond, recv, false) {
				return true
			}
		case *ast.BlockStmt:
			// Find the child statement of this block we came through and
			// look for an earlier early-return nil check.
			var pos token.Pos
			if i+1 < len(stack) {
				pos = stack[i+1].Pos()
			} else {
				pos = call.Pos()
			}
			for _, stmt := range n.List {
				if stmt.Pos() >= pos {
					break
				}
				ifs, ok := stmt.(*ast.IfStmt)
				if !ok || ifs.Else != nil || !condAsserts(ifs.Cond, recv, false) {
					continue
				}
				if divertsControl(ifs.Body) {
					return true
				}
			}
		}
		// Note: scanning continues across FuncLit boundaries on purpose.
		// A recorder field is wired once before the run starts, so a
		// closure scheduled under `if c.tel != nil` still holds a non-nil
		// recorder when it fires later.
	}
	return false
}

// condAsserts reports whether cond guarantees recv is non-nil (want =
// true) or nil (want = false) when it evaluates true. Conjunctions are
// searched for want=true (e.g. `a != nil && b`), disjunctions for
// want=false.
func condAsserts(cond ast.Expr, recv string, want bool) bool {
	switch c := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		switch c.Op {
		case token.NEQ, token.EQL:
			wantOp := token.EQL
			if want {
				wantOp = token.NEQ
			}
			if c.Op != wantOp {
				return false
			}
			x, y := ast.Unparen(c.X), ast.Unparen(c.Y)
			return (isNilIdent(y) && types.ExprString(x) == recv) ||
				(isNilIdent(x) && types.ExprString(y) == recv)
		case token.LAND:
			if want {
				return condAsserts(c.X, recv, true) || condAsserts(c.Y, recv, true)
			}
		case token.LOR:
			if !want {
				return condAsserts(c.X, recv, false) || condAsserts(c.Y, recv, false)
			}
		}
	case *ast.CallExpr:
		// recv.Enabled() implies recv != nil.
		if !want {
			return false
		}
		if sel, ok := ast.Unparen(c.Fun).(*ast.SelectorExpr); ok {
			return sel.Sel.Name == "Enabled" && types.ExprString(ast.Unparen(sel.X)) == recv
		}
	}
	return false
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// divertsControl reports whether the block always leaves the surrounding
// statement list (return, continue, break, goto, panic).
func divertsControl(block *ast.BlockStmt) bool {
	if len(block.List) == 0 {
		return false
	}
	switch last := block.List[len(block.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		call, ok := last.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		return ok && id.Name == "panic"
	}
	return false
}
