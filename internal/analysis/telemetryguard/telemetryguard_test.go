package telemetryguard_test

import (
	"testing"

	"github.com/rolo-storage/rolo/internal/analysis/analysistest"
	"github.com/rolo-storage/rolo/internal/analysis/telemetryguard"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, "testdata", telemetryguard.Analyzer, "fix/guard")
}
