package nilness_test

import (
	"testing"

	"github.com/rolo-storage/rolo/internal/analysis/analysistest"
	"github.com/rolo-storage/rolo/internal/analysis/nilness"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, "testdata", nilness.Analyzer,
		"fix/basic",    // in-function patterns, refinement idioms, waiver
		"fix/guardfix", // golden autofix: inserted nil guards
		"fix/xpkg",     // cross-package summaries via facts (dep: nildep)
	)
}
