// Package nilness flags dereferences of values the valueflow lattice
// proves nil or possibly nil.
//
// The analyzer judges the ssa package's dereference sites — pointer
// dereferences, field accesses through pointers, map writes, calls of
// function values and method calls through pointer bases — against the
// edge-refined value lattice. Two categories:
//
//   - deref: the base is provably nil on every path reaching the site
//     (a nil constant, the zero value of a declared-but-unassigned
//     pointer, the failed branch of a comma-ok).
//   - maybe: the base may be nil and the analysis holds positive
//     evidence: the value component of an unchecked map lookup or type
//     assertion, an explicit nil flowing into a join, or a callee whose
//     summary says the result is nil when its error is non-nil. Plain
//     unknown values are never flagged — no evidence, no finding.
//
// The refinement pass understands the idioms that discharge the
// obligation: `if p == nil { return }`, `if err != nil { return }`
// (paired with a (T, error) callee whose summary proves T non-nil on the
// no-error path), comma-ok checks, guards that end in panic or a
// no-return call (log.Fatalf), and short-circuit guards
// (`p != nil && p.f()`). A third category, arg, fires when a provably or
// possibly nil value is passed to a parameter the callee dereferences
// before any guard (the NonNilRequired precondition of its valueflow
// summary, imported across packages as facts).
//
// Where the shape is unambiguous — the base is a plain identifier, the
// dereference sits in a statement of its own, and the enclosing function
// has no results — the suggested fix inserts `if x == nil { return }`
// above the statement. Applying it makes the base non-nil at the site,
// so the fix is idempotent.
//
// Scope: all non-test files.
package nilness

import (
	"go/ast"
	"go/token"

	"github.com/rolo-storage/rolo/internal/analysis"
	"github.com/rolo-storage/rolo/internal/analysis/ssa"
	"github.com/rolo-storage/rolo/internal/analysis/valueflow"
)

// Analyzer is the nilness check.
var Analyzer = &analysis.Analyzer{
	Name: "nilness",
	Doc:  "flag dereferences of provably or possibly nil values",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	res := valueflow.Compute(pass)
	for _, fr := range res.Funcs {
		if fr.SSA.Unanalyzable || analysis.IsTestFile(pass.Fset, fr.SSA.Node.Pos()) {
			continue
		}
		checkDerefs(pass, res, fr)
		checkArgs(pass, res, fr)
	}
	return nil
}

func checkDerefs(pass *analysis.Pass, res *valueflow.Result, fr *valueflow.FuncResult) {
	for _, d := range fr.SSA.Derefs {
		if !fr.Reached(d.Block) {
			continue
		}
		a := res.SiteAbstract(fr, d.Base, d.Block, d.Guards)
		switch a.Nil {
		case valueflow.IsNil:
			pass.Report(analysis.Diagnostic{
				Pos:            d.Expr.Pos(),
				Category:       "deref",
				Message:        d.What + " of nil value " + baseName(d),
				SuggestedFixes: guardFix(fr.SSA, d),
			})
		case valueflow.MaybeNil:
			origin := a.NilOrigin
			if origin == "" {
				origin = "may be nil"
			}
			pass.Report(analysis.Diagnostic{
				Pos:            d.Expr.Pos(),
				Category:       "maybe",
				Message:        d.What + " of possibly nil value " + baseName(d) + ": " + origin,
				SuggestedFixes: guardFix(fr.SSA, d),
			})
		}
	}
}

// checkArgs flags nil-ish arguments passed to parameters the callee
// dereferences unconditionally (its summary's NonNilRequired).
func checkArgs(pass *analysis.Pass, res *valueflow.Result, fr *valueflow.FuncResult) {
	for _, cs := range fr.SSA.Calls {
		if cs.Callee == nil || !fr.Reached(cs.Block) {
			continue
		}
		s := res.SummaryOf(cs.Callee)
		if s == nil {
			continue
		}
		// Params lists the receiver first for methods; Args excludes it.
		shift := 0
		if cs.Recv != nil {
			shift = 1
		}
		for i, arg := range cs.Args {
			pi := i + shift
			if arg == nil || pi >= len(s.Params) || !s.Params[pi].NonNilRequired {
				continue
			}
			a := fr.AbstractAt(arg, cs.Block)
			switch a.Nil {
			case valueflow.IsNil:
				pass.Reportf(cs.Site.Pos(), "arg",
					"nil argument %d to %s, which dereferences it unconditionally",
					i+1, cs.Callee.Name())
			case valueflow.MaybeNil:
				origin := a.NilOrigin
				if origin == "" {
					origin = "may be nil"
				}
				pass.Reportf(cs.Site.Pos(), "arg",
					"possibly nil argument %d to %s, which dereferences it unconditionally: %s",
					i+1, cs.Callee.Name(), origin)
			}
		}
	}
}

// baseName renders the dereferenced base for the message.
func baseName(d *ssa.DerefSite) string {
	if id := baseIdent(d); id != nil {
		return id.Name
	}
	if d.Base != nil && d.Base.Var != nil {
		return d.Base.Var.Name()
	}
	return "expression"
}

// baseIdent returns the base as a plain identifier, if it is one.
func baseIdent(d *ssa.DerefSite) *ast.Ident {
	var x ast.Expr
	switch e := ast.Unparen(d.Expr).(type) {
	case *ast.StarExpr:
		x = e.X
	case *ast.SelectorExpr:
		x = e.X
	case *ast.IndexExpr:
		x = e.X
	case *ast.CallExpr:
		x = e.Fun
	default:
		return nil
	}
	id, _ := ast.Unparen(x).(*ast.Ident)
	return id
}

// guardFix builds the insert-a-guard fix when the shape is unambiguous:
// the base is a plain identifier, the site is in a statement directly
// inside a block, no short-circuit guard is active, and the enclosing
// function has no results (so a bare `return` is valid).
func guardFix(f *ssa.Func, d *ssa.DerefSite) []analysis.SuggestedFix {
	if len(d.Guards) > 0 || f.Sig == nil || f.Sig.Results().Len() > 0 {
		return nil
	}
	id := baseIdent(d)
	if id == nil {
		return nil
	}
	stmt := enclosingBlockStmt(f.Node, d.Expr.Pos())
	if stmt == nil {
		return nil
	}
	return []analysis.SuggestedFix{{
		Message: "guard " + id.Name + " against nil before the " + d.What,
		Edits: []analysis.TextEdit{{
			Pos:     stmt.Pos(),
			End:     stmt.Pos(),
			NewText: "if " + id.Name + " == nil {\nreturn\n}\n",
		}},
	}}
}

// enclosingBlockStmt finds the innermost statement containing pos whose
// parent is a plain block — the insertion point for a guard. Inspect
// visits outer blocks before the blocks nested inside them, so the last
// match is the innermost.
func enclosingBlockStmt(root ast.Node, pos token.Pos) ast.Stmt {
	var found ast.Stmt
	ast.Inspect(root, func(n ast.Node) bool {
		if bs, ok := n.(*ast.BlockStmt); ok {
			for _, s := range bs.List {
				if s.Pos() <= pos && pos < s.End() {
					found = s
				}
			}
		}
		return true
	})
	return found
}
