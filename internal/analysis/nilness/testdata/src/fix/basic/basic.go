// Package basic exercises the in-function nilness patterns: definite
// nils, evidence-backed maybes, and the refinement idioms that discharge
// them.
package basic

import "log"

type node struct {
	next *node
	val  int
}

type errBoom struct{}

func (*errBoom) Error() string { return "boom" }

func mk(ok bool) (*node, error) {
	if ok {
		return &node{}, nil
	}
	return nil, &errBoom{}
}

func definiteNil() int {
	var p *node
	return p.val // want `field access of nil value p`
}

func nilConstant() {
	var f func()
	f() // want `call of function value of nil value f`
}

func errChecked(ok bool) int {
	n, err := mk(ok)
	if err != nil {
		return 0
	}
	return n.val // err checked: n proven non-nil
}

func errUnchecked(ok bool) int {
	n, _ := mk(ok)
	return n.val // want `field access of possibly nil value n`
}

func nilGuard(p *node) int {
	if p == nil {
		return -1
	}
	return p.val // guarded: fine
}

func fatalGuard(p *node) int {
	if p == nil {
		log.Fatal("nil p")
	}
	return p.val // log.Fatal never returns: fine
}

func shortCircuit(p *node) bool {
	return p != nil && p.val > 0 // guard conjunct: fine
}

func mapLookupChecked(m map[string]*node) int {
	n, ok := m["k"]
	if !ok {
		return 0
	}
	return n.val // ok checked: fine
}

func mapLookupUnchecked(m map[string]*node) int {
	n, _ := m["k"]
	return n.val // want `field access of possibly nil value n: .*map lookup`
}

func mapLookupSingle(m map[string]*node) int {
	n := m["k"]
	return n.val // single-result lookup carries no evidence: not flagged
}

func assertUnchecked(x any) int {
	n, _ := x.(*node)
	return n.val // want `field access of possibly nil value n: .*type assertion`
}

func assertChecked(x any) int {
	n, ok := x.(*node)
	if !ok {
		return 0
	}
	return n.val // ok checked: fine
}

func nilMapWrite() {
	var m map[string]int
	m["k"] = 1 // want `write into map of nil value m`
}

func joinMaybe(ok bool) int {
	var p *node
	if ok {
		p = &node{}
	}
	return p.val // want `field access of possibly nil value p`
}

func joinBothArms(ok bool) int {
	var p *node
	if ok {
		p = &node{}
	} else {
		p = &node{val: 1}
	}
	return p.val // assigned on both arms: fine
}

func waived() int {
	var p *node
	return p.val //lint:allow nilness:deref demonstrating the waiver path
}
