// Package guardfix exercises the insert-a-guard autofix: the base is a
// plain identifier, the deref is a statement of its own, and the
// function has no results.
package guardfix

type rec struct{ n int }

func reset() {
	var r *rec
	r.n = 0 // want `field access of nil value r`
}

func drop(m map[string]*rec) {
	r, _ := m["k"]
	r.n = 0 // want `field access of possibly nil value r`
}
