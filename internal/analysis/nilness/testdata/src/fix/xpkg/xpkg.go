// Package xpkg consumes nildep's summaries through the fact layer: the
// err-check idiom discharges the imported maybe-nil, skipping the check
// keeps it, and passing nil to a NonNilRequired parameter is flagged at
// the call site.
package xpkg

import "nildep"

func checked(ok bool) int {
	b, err := nildep.Open(ok)
	if err != nil {
		return 0
	}
	return b.N // imported NonNilWhenNoErr fact: fine
}

func unchecked(ok bool) int {
	b, _ := nildep.Open(ok)
	return b.N // want `field access of possibly nil value b`
}

func nilArg() int {
	return nildep.Use(nil) // want `nil argument 1 to Use`
}
