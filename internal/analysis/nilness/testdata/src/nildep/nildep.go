// Package nildep is the cross-package dependency fixture: its summaries
// (the NonNilRequired parameter of Use, the nil-iff-error contract of
// Open) travel to the importing package as valueflow facts.
package nildep

type Buf struct{ N int }

type failErr struct{}

func (*failErr) Error() string { return "fail" }

// Use dereferences b before any guard: a NonNilRequired precondition.
func Use(b *Buf) int { return b.N }

// Open returns a non-nil Buf exactly when it succeeds.
func Open(ok bool) (*Buf, error) {
	if ok {
		return &Buf{}, nil
	}
	return nil, &failErr{}
}
