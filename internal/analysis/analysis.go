// Package analysis is a self-contained, stdlib-only miniature of the
// golang.org/x/tools/go/analysis framework, sized for this repository's
// needs: it defines the Analyzer and Pass types, runs a set of analyzers
// over one type-checked package, propagates per-object facts between
// packages (the bottom-up summary mechanism the interprocedural analyzers
// build on), carries suggested fixes for the `-fix` driver, and implements
// the `//lint:allow` suppression directive.
//
// Why not depend on x/tools? The reproduction is built and verified in
// hermetic environments with no module proxy, so the linter must compile
// from the standard library alone. The subset implemented here is small
// but no longer purely intra-package: analyzers may export JSON-encoded
// facts keyed by function (see facts.go), which the drivers ship across
// package boundaries — through vetx files under `go vet -vettool`, and
// in memory in the standalone and analysistest drivers.
//
// Three drivers sit on top of this package:
//
//   - unitchecker.go speaks the `go vet -vettool` JSON protocol, so the
//     suite runs under the go command with full build-cache integration
//     (including _test.go files);
//   - standalone.go loads packages itself via `go list -export`, for
//     direct `rololint ./...` invocations during development, and hosts
//     the `-fix` and `-sarif` modes;
//   - analysistest runs analyzers over fixture trees with `// want`
//     expectations and golden-file fix verification.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// `//lint:allow <name>:<category> <reason>` directives. It must be a
	// valid identifier.
	Name string
	// Doc is the help text: first line is a one-sentence summary.
	Doc string
	// Run applies the analyzer to one package, reporting diagnostics
	// through pass.Report or pass.Reportf.
	Run func(pass *Pass) error
}

func (a *Analyzer) String() string { return a.Name }

// A Pass presents one type-checked package to an analyzer's Run function.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report   func(Diagnostic)
	imported Facts
	exported Facts
}

// A TextEdit replaces the source range [Pos, End) with NewText.
// Pos == End inserts.
type TextEdit struct {
	Pos     token.Pos
	End     token.Pos
	NewText string
}

// A SuggestedFix is one self-contained remedy for a diagnostic: a set of
// non-overlapping edits the `-fix` driver can apply mechanically. Fixes
// must leave the file gofmt-clean after formatting and must not reproduce
// the diagnostic (so applying fixes is idempotent).
type SuggestedFix struct {
	Message string
	Edits   []TextEdit
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
	// Category classifies the finding within its analyzer (e.g.
	// "wall-clock", "leak"). The `//lint:allow` escape hatch is scoped to
	// analyzer:category, so every report should carry one.
	Category string
	// SuggestedFixes, when non-empty, lets `rololint -fix` repair the
	// finding in place.
	SuggestedFixes []SuggestedFix
}

// Report emits a diagnostic.
func (p *Pass) Report(d Diagnostic) { p.report(d) }

// Reportf emits a diagnostic at pos with the given category and a
// formatted message.
func (p *Pass) Reportf(pos token.Pos, category, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Category: category, Message: fmt.Sprintf(format, args...)})
}

// A FixEdit is a TextEdit resolved to a file and byte offsets, as carried
// by a Finding out of the analysis.
type FixEdit struct {
	Filename string
	Start    int // byte offset
	End      int
	NewText  string
}

// A Fix is a resolved SuggestedFix.
type Fix struct {
	Message string
	Edits   []FixEdit
}

// A Finding is a positioned diagnostic attributed to an analyzer, as
// produced by RunAnalyzers after suppression filtering.
type Finding struct {
	Analyzer string
	Category string
	Pos      token.Position
	Message  string
	Fixes    []Fix
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s [%s]", f.Pos, f.Message, f.Rule())
}

// Rule renders the finding's scoped identifier, "analyzer:category"
// (or just the analyzer name for uncategorized findings) — the token a
// `//lint:allow` directive must name to suppress it.
func (f Finding) Rule() string {
	if f.Category == "" {
		return f.Analyzer
	}
	return f.Analyzer + ":" + f.Category
}

// Unit is one package ready for analysis.
type Unit struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// NewInfo returns a types.Info with every map the analyzers consult
// allocated.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// RunAnalyzers applies every analyzer to the unit with no imported facts
// and discards exported ones — the entry point for purely intra-package
// callers (tests, single-package tools).
func RunAnalyzers(u *Unit, analyzers []*Analyzer) ([]Finding, error) {
	findings, _, err := RunAnalyzersFacts(u, analyzers, nil)
	return findings, err
}

// LintAllow is the waiver-audit meta-check. It reports nothing of its
// own from Run; instead, when it is part of the analyzer list, the
// framework judges every `//lint:allow` directive after the other
// analyzers have finished: a directive that suppressed no diagnostic in
// the run is reported as stale (with a removal fix), one with no reason
// as missing-reason, and one naming an analyzer absent from the run as
// unknown-analyzer. Directives scoped to lintallow itself are exempt
// (judging them would need a fixpoint), so `//lint:allow lintallow:stale
// <reason>` can retain a deliberately dormant waiver.
var LintAllow = &Analyzer{
	Name: "lintallow",
	Doc: "flag //lint:allow waivers that suppress nothing, lack a reason, or name an unknown analyzer\n" +
		"Waivers rot: the finding they excused gets fixed, the code moves, and the directive\n" +
		"remains, silencing the next genuine finding on that line. Running the suite with\n" +
		"lintallow enabled turns every such directive into a finding of its own.",
	Run: func(*Pass) error { return nil },
}

// RunAnalyzersFacts applies every analyzer to the unit and returns the
// surviving findings sorted by position, plus the facts the analyzers
// exported for downstream packages. imported holds the facts of the
// unit's dependencies (nil is an empty set).
//
// Diagnostics suppressed by a `//lint:allow <analyzer>:<category>
// <reason>` comment on the same line or the line immediately above are
// dropped; a directive with no reason does not suppress anything (the
// reason is the point of the escape hatch), and a directive naming only
// the analyzer suppresses only uncategorized findings — the category
// scoping is deliberate, so one escape hatch cannot blanket-silence an
// analyzer's other checks on the same line.
func RunAnalyzersFacts(u *Unit, analyzers []*Analyzer, imported Facts) ([]Finding, Facts, error) {
	findings, facts, _, err := RunAnalyzersAudit(u, analyzers, imported)
	return findings, facts, err
}

// RunAnalyzersAudit is RunAnalyzersFacts with the waiver audit trail: it
// additionally returns one AllowRecord per `//lint:allow` directive in
// the unit, each carrying the number of diagnostics it suppressed during
// this run. The records are in file/position order.
func RunAnalyzersAudit(u *Unit, analyzers []*Analyzer, imported Facts) ([]Finding, Facts, []AllowRecord, error) {
	allow := collectAllows(u.Fset, u.Files)
	exported := make(Facts)
	var findings []Finding
	report := func(name string) func(Diagnostic) {
		return func(d Diagnostic) {
			posn := u.Fset.Position(d.Pos)
			if allow.match(name, d.Category, posn) {
				return
			}
			findings = append(findings, Finding{
				Analyzer: name,
				Category: d.Category,
				Pos:      posn,
				Message:  d.Message,
				Fixes:    resolveFixes(u.Fset, d.SuggestedFixes),
			})
		}
	}
	auditing := false
	for _, a := range analyzers {
		if a.Name == LintAllow.Name {
			auditing = true
		}
		pass := &Pass{
			Analyzer:  a,
			Fset:      u.Fset,
			Files:     u.Files,
			Pkg:       u.Pkg,
			TypesInfo: u.Info,
			imported:  imported,
			exported:  exported,
		}
		pass.report = report(a.Name)
		if err := a.Run(pass); err != nil {
			return nil, nil, nil, fmt.Errorf("analyzer %s: %w", a.Name, err)
		}
	}
	if auditing {
		// Judge the directives only after every analyzer has had its
		// chance to hit them. The emitted findings go through the same
		// report path, so a lintallow-scoped directive can waive them —
		// and lintallow-scoped directives are never judged themselves,
		// which keeps the audit a single pass rather than a fixpoint.
		auditAllows(analyzers, allow, report(LintAllow.Name))
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, exported, allow.records(), nil
}

// resolveFixes turns position-based edits into file/offset edits so they
// survive past the life of the FileSet.
func resolveFixes(fset *token.FileSet, fixes []SuggestedFix) []Fix {
	if len(fixes) == 0 {
		return nil
	}
	out := make([]Fix, 0, len(fixes))
	for _, sf := range fixes {
		fix := Fix{Message: sf.Message}
		ok := true
		for _, e := range sf.Edits {
			start := fset.Position(e.Pos)
			end := start
			if e.End.IsValid() {
				end = fset.Position(e.End)
			}
			if start.Filename == "" || end.Filename != start.Filename || end.Offset < start.Offset {
				ok = false
				break
			}
			fix.Edits = append(fix.Edits, FixEdit{
				Filename: start.Filename,
				Start:    start.Offset,
				End:      end.Offset,
				NewText:  e.NewText,
			})
		}
		if ok && len(fix.Edits) > 0 {
			out = append(out, fix)
		}
	}
	return out
}

// An AllowRecord describes one `//lint:allow` directive found in a unit,
// as returned by RunAnalyzersAudit for the `-allows` audit mode.
type AllowRecord struct {
	Pos    token.Position // position of the directive comment
	Rule   string         // "analyzer" or "analyzer:category"
	Reason string         // "" when the directive omitted its reason
	Hits   int            // diagnostics it suppressed during the run
}

// allowKey identifies one suppressed (file, line, rule) cell.
type allowKey struct {
	file string
	line int
	rule string // "analyzer" or "analyzer:category"
}

// an allowDirective is one parsed `//lint:allow` comment, tracked through
// the run so the audit can tell live waivers from stale ones.
type allowDirective struct {
	rule   string
	reason string
	pos    token.Pos // comment extent, for the removal fix
	end    token.Pos
	posn   token.Position
	hits   int
}

type allowSet struct {
	byKey map[allowKey]*allowDirective
	all   []*allowDirective // file/position order
}

// match reports whether a diagnostic from the named analyzer and category
// at posn is covered by a directive on its line or the line above, and
// credits the covering directive with the hit. A directive must name the
// finding's exact analyzer:category pair (or the bare analyzer name for
// uncategorized findings).
func (s *allowSet) match(analyzer, category string, posn token.Position) bool {
	rule := analyzer
	if category != "" {
		rule = analyzer + ":" + category
	}
	d := s.byKey[allowKey{posn.Filename, posn.Line, rule}]
	if d == nil {
		d = s.byKey[allowKey{posn.Filename, posn.Line - 1, rule}]
	}
	if d == nil {
		return false
	}
	d.hits++
	return true
}

// records renders the directives as AllowRecords.
func (s *allowSet) records() []AllowRecord {
	if len(s.all) == 0 {
		return nil
	}
	out := make([]AllowRecord, len(s.all))
	for i, d := range s.all {
		out[i] = AllowRecord{Pos: d.posn, Rule: d.rule, Reason: d.reason, Hits: d.hits}
	}
	return out
}

// AllowDirective is the comment prefix of the suppression escape hatch.
const AllowDirective = "lint:allow"

// collectAllows scans file comments for `//lint:allow <analyzer>:<category>
// <reason>` directives. The directive suppresses matching findings on its
// own line and the following line, so it works both as a trailing comment
// and as a comment above the offending statement. A directive without a
// reason suppresses nothing (the reason is the point of the escape hatch)
// but is still recorded, so the audit can flag it.
func collectAllows(fset *token.FileSet, files []*ast.File) *allowSet {
	set := &allowSet{byKey: make(map[allowKey]*allowDirective)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				rest, ok := strings.CutPrefix(text, AllowDirective)
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue // bare "//lint:allow": not even a rule
				}
				d := &allowDirective{
					rule: fields[0],
					pos:  c.Pos(),
					end:  c.End(),
					posn: fset.Position(c.Pos()),
				}
				if len(fields) >= 2 {
					d.reason = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest), fields[0]))
					set.byKey[allowKey{d.posn.Filename, d.posn.Line, d.rule}] = d
				}
				set.all = append(set.all, d)
			}
		}
	}
	return set
}

// auditAllows emits the lintallow findings for a finished run: stale
// directives (zero hits), reasonless ones, and ones naming an analyzer
// that is not part of the run. Directives scoped to lintallow itself are
// exempt. The candidate set is computed before any finding is emitted, so
// the emitted findings' own allow matching cannot change the verdicts.
func auditAllows(analyzers []*Analyzer, allow *allowSet, report func(Diagnostic)) {
	names := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		names[a.Name] = true
	}
	type verdict struct {
		d        *allowDirective
		category string
		message  string
	}
	var verdicts []verdict
	for _, d := range allow.all {
		analyzer, _, _ := strings.Cut(d.rule, ":")
		switch {
		case analyzer == LintAllow.Name:
			continue
		case d.reason == "":
			verdicts = append(verdicts, verdict{d, "missing-reason",
				fmt.Sprintf("//lint:allow %s has no reason, so it suppresses nothing; state why the finding is acceptable or remove the directive", d.rule)})
		case !names[analyzer]:
			verdicts = append(verdicts, verdict{d, "unknown-analyzer",
				fmt.Sprintf("//lint:allow %s names no analyzer in this run; fix the analyzer name or remove the directive", d.rule)})
		case d.hits == 0:
			verdicts = append(verdicts, verdict{d, "stale",
				fmt.Sprintf("//lint:allow %s suppresses nothing here: the waived finding is gone, so remove the directive (or waive this report with lintallow:stale if it must stay)", d.rule)})
		}
	}
	for _, v := range verdicts {
		report(Diagnostic{
			Pos:      v.d.pos,
			Category: v.category,
			Message:  v.message,
			SuggestedFixes: []SuggestedFix{{
				Message: "remove the //lint:allow directive",
				Edits:   []TextEdit{{Pos: v.d.pos, End: v.d.end}},
			}},
		})
	}
}
