// Package analysis is a self-contained, stdlib-only miniature of the
// golang.org/x/tools/go/analysis framework, sized for this repository's
// needs: it defines the Analyzer and Pass types, runs a set of analyzers
// over one type-checked package, and implements the `//lint:allow`
// suppression directive.
//
// Why not depend on x/tools? The reproduction is built and verified in
// hermetic environments with no module proxy, so the linter must compile
// from the standard library alone. The subset implemented here is small:
// analyzers are intra-package (no facts, no cross-package dependencies),
// which is all the rololint suite requires.
//
// Two drivers sit on top of this package:
//
//   - unitchecker.go speaks the `go vet -vettool` JSON protocol, so the
//     suite runs under the go command with full build-cache integration
//     (including _test.go files);
//   - standalone.go loads packages itself via `go list -export`, for
//     direct `rololint ./...` invocations during development.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// `//lint:allow <name> <reason>` directives. It must be a valid
	// identifier.
	Name string
	// Doc is the help text: first line is a one-sentence summary.
	Doc string
	// Run applies the analyzer to one package, reporting diagnostics
	// through pass.Report or pass.Reportf.
	Run func(pass *Pass) error
}

func (a *Analyzer) String() string { return a.Name }

// A Pass presents one type-checked package to an analyzer's Run function.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Report emits a diagnostic.
func (p *Pass) Report(d Diagnostic) { p.report(d) }

// Reportf emits a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Finding is a positioned diagnostic attributed to an analyzer, as
// produced by RunAnalyzers after suppression filtering.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s [%s]", f.Pos, f.Message, f.Analyzer)
}

// Unit is one package ready for analysis.
type Unit struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// NewInfo returns a types.Info with every map the analyzers consult
// allocated.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// RunAnalyzers applies every analyzer to the unit and returns the
// surviving findings sorted by position. Diagnostics suppressed by a
// `//lint:allow <analyzer> <reason>` comment on the same line or the line
// immediately above are dropped; a directive with no reason does not
// suppress anything (the reason is the point of the escape hatch).
func RunAnalyzers(u *Unit, analyzers []*Analyzer) ([]Finding, error) {
	allow := collectAllows(u.Fset, u.Files)
	var findings []Finding
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      u.Fset,
			Files:     u.Files,
			Pkg:       u.Pkg,
			TypesInfo: u.Info,
		}
		name := a.Name
		pass.report = func(d Diagnostic) {
			posn := u.Fset.Position(d.Pos)
			if allow.match(name, posn) {
				return
			}
			findings = append(findings, Finding{Analyzer: name, Pos: posn, Message: d.Message})
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %w", a.Name, err)
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

// allowKey identifies one suppressed (file, line, analyzer) cell.
type allowKey struct {
	file     string
	line     int
	analyzer string
}

type allowSet map[allowKey]bool

// match reports whether a diagnostic from the named analyzer at posn is
// covered by a directive on its line or the line above.
func (s allowSet) match(analyzer string, posn token.Position) bool {
	return s[allowKey{posn.Filename, posn.Line, analyzer}] ||
		s[allowKey{posn.Filename, posn.Line - 1, analyzer}]
}

// AllowDirective is the comment prefix of the suppression escape hatch.
const AllowDirective = "lint:allow"

// collectAllows scans file comments for `//lint:allow <analyzer> <reason>`
// directives. The directive suppresses findings of <analyzer> on its own
// line and the following line, so it works both as a trailing comment and
// as a comment above the offending statement.
func collectAllows(fset *token.FileSet, files []*ast.File) allowSet {
	set := make(allowSet)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				rest, ok := strings.CutPrefix(text, AllowDirective)
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					// Analyzer name without a reason: ignored on purpose.
					continue
				}
				posn := fset.Position(c.Pos())
				set[allowKey{posn.Filename, posn.Line, fields[0]}] = true
			}
		}
	}
	return set
}
