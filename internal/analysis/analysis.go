// Package analysis is a self-contained, stdlib-only miniature of the
// golang.org/x/tools/go/analysis framework, sized for this repository's
// needs: it defines the Analyzer and Pass types, runs a set of analyzers
// over one type-checked package, propagates per-object facts between
// packages (the bottom-up summary mechanism the interprocedural analyzers
// build on), carries suggested fixes for the `-fix` driver, and implements
// the `//lint:allow` suppression directive.
//
// Why not depend on x/tools? The reproduction is built and verified in
// hermetic environments with no module proxy, so the linter must compile
// from the standard library alone. The subset implemented here is small
// but no longer purely intra-package: analyzers may export JSON-encoded
// facts keyed by function (see facts.go), which the drivers ship across
// package boundaries — through vetx files under `go vet -vettool`, and
// in memory in the standalone and analysistest drivers.
//
// Three drivers sit on top of this package:
//
//   - unitchecker.go speaks the `go vet -vettool` JSON protocol, so the
//     suite runs under the go command with full build-cache integration
//     (including _test.go files);
//   - standalone.go loads packages itself via `go list -export`, for
//     direct `rololint ./...` invocations during development, and hosts
//     the `-fix` and `-sarif` modes;
//   - analysistest runs analyzers over fixture trees with `// want`
//     expectations and golden-file fix verification.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// `//lint:allow <name>:<category> <reason>` directives. It must be a
	// valid identifier.
	Name string
	// Doc is the help text: first line is a one-sentence summary.
	Doc string
	// Run applies the analyzer to one package, reporting diagnostics
	// through pass.Report or pass.Reportf.
	Run func(pass *Pass) error
}

func (a *Analyzer) String() string { return a.Name }

// A Pass presents one type-checked package to an analyzer's Run function.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report   func(Diagnostic)
	imported Facts
	exported Facts
}

// A TextEdit replaces the source range [Pos, End) with NewText.
// Pos == End inserts.
type TextEdit struct {
	Pos     token.Pos
	End     token.Pos
	NewText string
}

// A SuggestedFix is one self-contained remedy for a diagnostic: a set of
// non-overlapping edits the `-fix` driver can apply mechanically. Fixes
// must leave the file gofmt-clean after formatting and must not reproduce
// the diagnostic (so applying fixes is idempotent).
type SuggestedFix struct {
	Message string
	Edits   []TextEdit
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
	// Category classifies the finding within its analyzer (e.g.
	// "wall-clock", "leak"). The `//lint:allow` escape hatch is scoped to
	// analyzer:category, so every report should carry one.
	Category string
	// SuggestedFixes, when non-empty, lets `rololint -fix` repair the
	// finding in place.
	SuggestedFixes []SuggestedFix
}

// Report emits a diagnostic.
func (p *Pass) Report(d Diagnostic) { p.report(d) }

// Reportf emits a diagnostic at pos with the given category and a
// formatted message.
func (p *Pass) Reportf(pos token.Pos, category, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Category: category, Message: fmt.Sprintf(format, args...)})
}

// A FixEdit is a TextEdit resolved to a file and byte offsets, as carried
// by a Finding out of the analysis.
type FixEdit struct {
	Filename string
	Start    int // byte offset
	End      int
	NewText  string
}

// A Fix is a resolved SuggestedFix.
type Fix struct {
	Message string
	Edits   []FixEdit
}

// A Finding is a positioned diagnostic attributed to an analyzer, as
// produced by RunAnalyzers after suppression filtering.
type Finding struct {
	Analyzer string
	Category string
	Pos      token.Position
	Message  string
	Fixes    []Fix
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s [%s]", f.Pos, f.Message, f.Rule())
}

// Rule renders the finding's scoped identifier, "analyzer:category"
// (or just the analyzer name for uncategorized findings) — the token a
// `//lint:allow` directive must name to suppress it.
func (f Finding) Rule() string {
	if f.Category == "" {
		return f.Analyzer
	}
	return f.Analyzer + ":" + f.Category
}

// Unit is one package ready for analysis.
type Unit struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// NewInfo returns a types.Info with every map the analyzers consult
// allocated.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// RunAnalyzers applies every analyzer to the unit with no imported facts
// and discards exported ones — the entry point for purely intra-package
// callers (tests, single-package tools).
func RunAnalyzers(u *Unit, analyzers []*Analyzer) ([]Finding, error) {
	findings, _, err := RunAnalyzersFacts(u, analyzers, nil)
	return findings, err
}

// RunAnalyzersFacts applies every analyzer to the unit and returns the
// surviving findings sorted by position, plus the facts the analyzers
// exported for downstream packages. imported holds the facts of the
// unit's dependencies (nil is an empty set).
//
// Diagnostics suppressed by a `//lint:allow <analyzer>:<category>
// <reason>` comment on the same line or the line immediately above are
// dropped; a directive with no reason does not suppress anything (the
// reason is the point of the escape hatch), and a directive naming only
// the analyzer suppresses only uncategorized findings — the category
// scoping is deliberate, so one escape hatch cannot blanket-silence an
// analyzer's other checks on the same line.
func RunAnalyzersFacts(u *Unit, analyzers []*Analyzer, imported Facts) ([]Finding, Facts, error) {
	allow := collectAllows(u.Fset, u.Files)
	exported := make(Facts)
	var findings []Finding
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      u.Fset,
			Files:     u.Files,
			Pkg:       u.Pkg,
			TypesInfo: u.Info,
			imported:  imported,
			exported:  exported,
		}
		name := a.Name
		pass.report = func(d Diagnostic) {
			posn := u.Fset.Position(d.Pos)
			if allow.match(name, d.Category, posn) {
				return
			}
			findings = append(findings, Finding{
				Analyzer: name,
				Category: d.Category,
				Pos:      posn,
				Message:  d.Message,
				Fixes:    resolveFixes(u.Fset, d.SuggestedFixes),
			})
		}
		if err := a.Run(pass); err != nil {
			return nil, nil, fmt.Errorf("analyzer %s: %w", a.Name, err)
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, exported, nil
}

// resolveFixes turns position-based edits into file/offset edits so they
// survive past the life of the FileSet.
func resolveFixes(fset *token.FileSet, fixes []SuggestedFix) []Fix {
	if len(fixes) == 0 {
		return nil
	}
	out := make([]Fix, 0, len(fixes))
	for _, sf := range fixes {
		fix := Fix{Message: sf.Message}
		ok := true
		for _, e := range sf.Edits {
			start := fset.Position(e.Pos)
			end := start
			if e.End.IsValid() {
				end = fset.Position(e.End)
			}
			if start.Filename == "" || end.Filename != start.Filename || end.Offset < start.Offset {
				ok = false
				break
			}
			fix.Edits = append(fix.Edits, FixEdit{
				Filename: start.Filename,
				Start:    start.Offset,
				End:      end.Offset,
				NewText:  e.NewText,
			})
		}
		if ok && len(fix.Edits) > 0 {
			out = append(out, fix)
		}
	}
	return out
}

// allowKey identifies one suppressed (file, line, rule) cell.
type allowKey struct {
	file string
	line int
	rule string // "analyzer" or "analyzer:category"
}

type allowSet map[allowKey]bool

// match reports whether a diagnostic from the named analyzer and category
// at posn is covered by a directive on its line or the line above. A
// directive must name the finding's exact analyzer:category pair (or the
// bare analyzer name for uncategorized findings).
func (s allowSet) match(analyzer, category string, posn token.Position) bool {
	rule := analyzer
	if category != "" {
		rule = analyzer + ":" + category
	}
	return s[allowKey{posn.Filename, posn.Line, rule}] ||
		s[allowKey{posn.Filename, posn.Line - 1, rule}]
}

// AllowDirective is the comment prefix of the suppression escape hatch.
const AllowDirective = "lint:allow"

// collectAllows scans file comments for `//lint:allow <analyzer>:<category>
// <reason>` directives. The directive suppresses matching findings on its
// own line and the following line, so it works both as a trailing comment
// and as a comment above the offending statement.
func collectAllows(fset *token.FileSet, files []*ast.File) allowSet {
	set := make(allowSet)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				rest, ok := strings.CutPrefix(text, AllowDirective)
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					// Rule without a reason: ignored on purpose.
					continue
				}
				posn := fset.Position(c.Pos())
				set[allowKey{posn.Filename, posn.Line, fields[0]}] = true
			}
		}
	}
	return set
}
