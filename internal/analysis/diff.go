package analysis

import (
	"bytes"
	"fmt"
	"strings"
)

// UnifiedDiff renders a unified diff (three lines of context) between
// two versions of one file, in the `diff -u` format patch and code
// review tools understand. It returns "" when the contents are equal.
//
// The line-level alignment is a longest-common-subsequence computed by
// dynamic programming over the lines that remain after stripping the
// common prefix and suffix; autofix diffs are a handful of lines in
// files of a few hundred, so the quadratic core never sees large inputs.
func UnifiedDiff(name string, a, b []byte) string {
	if bytes.Equal(a, b) {
		return ""
	}
	alines := splitLines(a)
	blines := splitLines(b)

	// Strip common prefix/suffix so the DP table covers only the
	// changed middle.
	pre := 0
	for pre < len(alines) && pre < len(blines) && alines[pre] == blines[pre] {
		pre++
	}
	suf := 0
	for suf < len(alines)-pre && suf < len(blines)-pre &&
		alines[len(alines)-1-suf] == blines[len(blines)-1-suf] {
		suf++
	}
	ma := alines[pre : len(alines)-suf]
	mb := blines[pre : len(blines)-suf]

	// ops over the middle: 0 = same, -1 = delete from a, +1 = insert
	// from b, in order.
	type op struct {
		kind int
		text string
	}
	var mid []op
	lcs := lcsTable(ma, mb)
	for i, j := 0, 0; i < len(ma) || j < len(mb); {
		switch {
		case i < len(ma) && j < len(mb) && ma[i] == mb[j]:
			mid = append(mid, op{0, ma[i]})
			i++
			j++
		case i < len(ma) && (j == len(mb) || lcs[i+1][j] >= lcs[i][j+1]):
			// Deletions before insertions, matching `diff -u`.
			mid = append(mid, op{-1, ma[i]})
			i++
		default:
			mid = append(mid, op{+1, mb[j]})
			j++
		}
	}

	// Full op stream with the stripped prefix/suffix restored as context.
	ops := make([]op, 0, pre+len(mid)+suf)
	for _, l := range alines[:pre] {
		ops = append(ops, op{0, l})
	}
	ops = append(ops, mid...)
	for _, l := range alines[len(alines)-suf:] {
		ops = append(ops, op{0, l})
	}

	// Group into hunks: runs of changes padded with up to three context
	// lines, merged when their context would touch.
	const ctx = 3
	var sb strings.Builder
	fmt.Fprintf(&sb, "--- a/%s\n+++ b/%s\n", name, name)
	aline, bline := 1, 1 // 1-based line numbers into a and b
	i := 0
	for i < len(ops) {
		if ops[i].kind == 0 {
			aline++
			bline++
			i++
			continue
		}
		// Start of a hunk: back up for leading context.
		start := i
		lead := 0
		for lead < ctx && start > 0 && ops[start-1].kind == 0 {
			start--
			lead++
		}
		// Extend to the end of the hunk: include runs of context up to
		// 2*ctx long between changes, stop when a longer calm stretch
		// (or the end) follows.
		end := i
		for j := i; j < len(ops); {
			if ops[j].kind != 0 {
				end = j + 1
				j++
				continue
			}
			calm := 0
			for j+calm < len(ops) && ops[j+calm].kind == 0 {
				calm++
			}
			if j+calm == len(ops) || calm > 2*ctx {
				break
			}
			j += calm
			end = j
		}
		trail := 0
		for trail < ctx && end+trail < len(ops) && ops[end+trail].kind == 0 {
			trail++
		}

		hunk := ops[start : end+trail]
		aStart, bStart := aline-lead, bline-lead
		aCount, bCount := 0, 0
		for _, o := range hunk {
			if o.kind <= 0 {
				aCount++
			}
			if o.kind >= 0 {
				bCount++
			}
		}
		fmt.Fprintf(&sb, "@@ -%s +%s @@\n", span(aStart, aCount), span(bStart, bCount))
		for _, o := range hunk {
			switch o.kind {
			case 0:
				sb.WriteString(" " + o.text + "\n")
			case -1:
				sb.WriteString("-" + o.text + "\n")
			case +1:
				sb.WriteString("+" + o.text + "\n")
			}
		}
		aline, bline = aStart+aCount, bStart+bCount
		i = end + trail
	}
	return sb.String()
}

// span renders one side of a @@ header the way `diff -u` does: a bare
// line number when the count is 1, and the line before the gap when the
// hunk has no lines on that side.
func span(start, count int) string {
	switch count {
	case 0:
		return fmt.Sprintf("%d,0", start-1)
	case 1:
		return fmt.Sprintf("%d", start)
	}
	return fmt.Sprintf("%d,%d", start, count)
}

// splitLines splits on '\n' without producing a phantom final element
// for the customary trailing newline.
func splitLines(src []byte) []string {
	s := string(src)
	s = strings.TrimSuffix(s, "\n")
	if s == "" {
		return nil
	}
	return strings.Split(s, "\n")
}

// lcsTable fills the standard LCS length table: lcs[i][j] is the length
// of the longest common subsequence of a[i:] and b[j:].
func lcsTable(a, b []string) [][]int {
	lcs := make([][]int, len(a)+1)
	for i := range lcs {
		lcs[i] = make([]int, len(b)+1)
	}
	for i := len(a) - 1; i >= 0; i-- {
		for j := len(b) - 1; j >= 0; j-- {
			if a[i] == b[j] {
				lcs[i][j] = lcs[i+1][j+1] + 1
			} else if lcs[i+1][j] >= lcs[i][j+1] {
				lcs[i][j] = lcs[i+1][j]
			} else {
				lcs[i][j] = lcs[i][j+1]
			}
		}
	}
	return lcs
}
