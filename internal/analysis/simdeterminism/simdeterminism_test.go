package simdeterminism_test

import (
	"testing"

	"github.com/rolo-storage/rolo/internal/analysis/analysistest"
	"github.com/rolo-storage/rolo/internal/analysis/simdeterminism"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, "testdata", simdeterminism.Analyzer,
		"fix/internal/simdet", // flagged and allowed patterns in scope
		"fix/plain",           // out of scope: no internal/cmd path segment
	)
}
