// Package simdeterminism forbids nondeterminism in simulation code.
//
// The engine in internal/sim promises that the same configuration and
// seed always produce the same trajectory — the telemetry layer's
// byte-for-byte journal determinism and every reported curve depend on
// it. This analyzer mechanically enforces the three ways that promise is
// most easily broken:
//
//  1. wall-clock reads (time.Now, time.Since, time.Until) — simulation
//     code must use sim.Engine's virtual clock;
//  2. the global math/rand source (rand.Intn, rand.Float64, rand.Shuffle,
//     ...) — randomness must flow from a seeded rand.New(rand.NewSource)
//     so a run is a pure function of its seed;
//  3. map iteration whose order can leak into the trajectory or output:
//     a `for range` over a map whose body prints, emits telemetry,
//     schedules simulation events, or appends to a slice that outlives
//     the loop. Collecting keys into a slice that is subsequently sorted
//     in the same function is the sanctioned pattern and is not flagged.
//
// Scope: packages with an "internal" or "cmd" path segment, excluding
// _test.go files. Legitimate wall-clock uses (e.g. progress timers in
// command-line drivers) carry a `//lint:allow simdeterminism:<category>
// <reason>` directive naming the category being waived (wall-clock,
// global-rand, map-iteration).
package simdeterminism

import (
	"go/ast"
	"go/types"
	"strings"

	"github.com/rolo-storage/rolo/internal/analysis"
)

// Analyzer is the simdeterminism check.
var Analyzer = &analysis.Analyzer{
	Name: "simdeterminism",
	Doc:  "forbid wall-clock time, the global math/rand source, and order-leaking map iteration in simulation code",
	Run:  run,
}

// wallClockFuncs are the time package functions that read the wall clock.
var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

func run(pass *analysis.Pass) error {
	path := pass.Pkg.Path()
	if !analysis.HasPathSegment(path, "internal") && !analysis.HasPathSegment(path, "cmd") {
		return nil
	}
	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		analysis.WalkStack(file, func(n ast.Node, stack []ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, n)
			case *ast.RangeStmt:
				checkMapRange(pass, n, stack)
			}
			return true
		})
	}
	return nil
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return // methods (e.g. time.Time.Sub, rand.Rand.Intn) are fine
	}
	switch fn.Pkg().Path() {
	case "time":
		if wallClockFuncs[fn.Name()] {
			pass.Reportf(call.Pos(), "wall-clock",
				"wall-clock time.%s in simulation code; use the sim.Engine clock", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		// Constructors (New, NewSource, NewZipf, NewPCG, ...) build seeded
		// generators and are the sanctioned API; every other top-level
		// function draws from the unseeded global source.
		if !strings.HasPrefix(fn.Name(), "New") {
			pass.Reportf(call.Pos(), "global-rand",
				"global %s.%s source in simulation code; use a seeded rand.New(rand.NewSource(seed))",
				fn.Pkg().Name(), fn.Name())
		}
	}
}

// checkMapRange flags `for ... range m` over a map when the loop body's
// effects depend on iteration order.
func checkMapRange(pass *analysis.Pass, rng *ast.RangeStmt, stack []ast.Node) {
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	fn := analysis.EnclosingFunc(stack)
	var reason string
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch {
		case isSchedulingCall(pass, call):
			reason = "schedules events"
		case isOutputCall(pass, call):
			reason = "emits output"
		case isEscapingAppend(pass, call, rng, fn):
			reason = "appends to a slice that outlives the loop without sorting it"
		}
		return true
	})
	if reason != "" {
		pass.Reportf(rng.Pos(), "map-iteration",
			"map iteration %s; iteration order is random — sort the keys first", reason)
	}
}

// printFuncs are fmt's direct-output functions.
var printFuncs = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

// isEmittingMethodName matches telemetry emission and writer output
// methods by name.
func isEmittingMethodName(name string) bool {
	return strings.HasPrefix(name, "Emit") ||
		strings.HasPrefix(name, "Write") ||
		strings.HasPrefix(name, "Print")
}

func isOutputCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil {
		return false
	}
	sig, _ := fn.Type().(*types.Signature)
	isMethod := sig != nil && sig.Recv() != nil
	if !isMethod && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && printFuncs[fn.Name()] {
		return true
	}
	return isMethod && isEmittingMethodName(fn.Name())
}

// isSchedulingCall matches simulation event scheduling (sim.Engine's
// Schedule/After shape) by method name.
func isSchedulingCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil {
		return false
	}
	sig, _ := fn.Type().(*types.Signature)
	return sig != nil && sig.Recv() != nil && (fn.Name() == "Schedule" || fn.Name() == "After")
}

// isEscapingAppend reports whether call is `append(s, ...)` for a slice s
// declared outside the range statement, unless s is sorted later in the
// enclosing function (the collect-then-sort idiom).
func isEscapingAppend(pass *analysis.Pass, call *ast.CallExpr, rng *ast.RangeStmt, fn ast.Node) bool {
	ident, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	if _, isBuiltin := pass.TypesInfo.Uses[ident].(*types.Builtin); !isBuiltin || ident.Name != "append" {
		return false
	}
	if len(call.Args) == 0 {
		return false
	}
	target := ast.Unparen(call.Args[0])
	switch target := target.(type) {
	case *ast.Ident:
		obj := pass.TypesInfo.Uses[target]
		if obj == nil {
			return false
		}
		// Declared inside the loop: the append cannot outlive an iteration.
		if obj.Pos() >= rng.Pos() && obj.Pos() < rng.End() {
			return false
		}
	case *ast.SelectorExpr:
		// Field or package-level target: always outlives the loop.
	default:
		return false
	}
	return !sortedLater(pass, target, fn)
}

// sortedLater reports whether the enclosing function passes expr to a
// sort/slices ordering function somewhere, which makes collect-loops
// deterministic downstream.
func sortedLater(pass *analysis.Pass, expr ast.Expr, fn ast.Node) bool {
	if fn == nil {
		return false
	}
	want := types.ExprString(expr)
	found := false
	ast.Inspect(fn, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := analysis.CalleeFunc(pass.TypesInfo, call)
		if callee == nil || callee.Pkg() == nil {
			return true
		}
		pkg := callee.Pkg().Path()
		if pkg != "sort" && pkg != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if types.ExprString(ast.Unparen(arg)) == want {
				found = true
			}
		}
		return true
	})
	return found
}
