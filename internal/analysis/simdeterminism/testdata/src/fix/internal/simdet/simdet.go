// Package simdet exercises the simdeterminism analyzer: wall-clock
// reads, global math/rand, and order-leaking map iteration.
package simdet

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

type engine struct{}

func (engine) Schedule(at int64) {}

func wallClock() {
	_ = time.Now()        // want `wall-clock time\.Now`
	t0 := time.Now()      // want `wall-clock time\.Now`
	_ = time.Since(t0)    // want `wall-clock time\.Since`
	_ = time.Until(t0)    // want `wall-clock time\.Until`
	_ = time.Unix(0, 0)   // constructing times is fine
	_ = t0.Sub(t0)        // methods are fine
	start := time.Now()   //lint:allow simdeterminism:wall-clock wall-clock benchmark timing is intentional here
	_ = time.Since(start) //lint:allow simdeterminism:wall-clock paired with the timer above
	_ = time.Duration(5)  // plain duration math is fine
	_ = time.Second * 3   // constants are fine
}

//lint:allow simdeterminism:wall-clock
func allowWithoutReason() {
	// The directive above has no reason, so it must NOT suppress:
	_ = time.Now() // want `wall-clock time\.Now`
}

func globalRand() {
	_ = rand.Intn(10)                   // want `global rand\.Intn source`
	_ = rand.Float64()                  // want `global rand\.Float64 source`
	rand.Shuffle(3, func(i, j int) {})  // want `global rand\.Shuffle source`
	rng := rand.New(rand.NewSource(42)) // seeded: fine
	_ = rng.Intn(10)                    // method on seeded source: fine
	_ = rand.NewZipf(rng, 1.1, 1, 100)  // constructor: fine
}

func mapEmit(m map[string]int, eng engine) {
	for k := range m { // want `map iteration emits output`
		fmt.Println(k)
	}
	for k, v := range m { // want `map iteration emits output`
		if v > 0 {
			fmt.Printf("%s\n", k)
		}
	}
	for range m { // want `map iteration schedules events`
		eng.Schedule(1)
	}
}

func mapAppendEscape(m map[string]int) []string {
	var out []string
	for k := range m { // want `appends to a slice that outlives the loop`
		out = append(out, k)
	}
	return out
}

func mapCollectThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { // collect-then-sort: fine
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func mapAggregate(m map[string]int) int {
	total := 0
	for _, v := range m { // commutative aggregation: fine
		total += v
	}
	// Appending inside the loop to a slice declared inside it: fine.
	for k := range m {
		local := []string{}
		local = append(local, k)
		_ = local
	}
	return total
}

func sliceRange(xs []string) {
	for _, x := range xs { // slices iterate in order: fine
		fmt.Println(x)
	}
}
