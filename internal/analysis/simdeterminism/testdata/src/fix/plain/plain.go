// Package plain sits outside the analyzer's scope (no internal or cmd
// path segment), so nothing here is flagged.
package plain

import "time"

func wallClockOK() time.Time {
	return time.Now() // out of scope: not simulation code
}
