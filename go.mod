module github.com/rolo-storage/rolo

go 1.22
