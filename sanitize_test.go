package rolo

import (
	"testing"

	"github.com/rolo-storage/rolo/internal/sim"
)

// TestRunAllSchemesChecked replays a rotation/destage-heavy workload
// through every scheme with RoloSan enabled and a short sweep period, so
// the recoverability, conservation, state-machine and accounting checks
// all run many times over live controller state. Any violation fails Run.
func TestRunAllSchemesChecked(t *testing.T) {
	for _, s := range Schemes {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			cfg := smallConfig(s)
			cfg.Check = true
			cfg.CheckSweepEvery = 512
			recs := writeHeavy(t, cfg, 100, sim.Minute, 0.95)
			rep, err := Run(cfg, recs)
			if err != nil {
				t.Fatalf("Run with sanitizer: %v", err)
			}
			if rep.SanitizerEvents == 0 {
				t.Error("sanitizer observed no events")
			}
			if rep.SanitizerSweeps == 0 {
				t.Error("sanitizer ran no sweeps")
			}
			t.Logf("%-7s clean: %d events, %d sweeps (rot=%d dest=%d spins=%d)",
				s, rep.SanitizerEvents, rep.SanitizerSweeps,
				rep.Rotations, rep.Destages, rep.SpinCycles)
		})
	}
}

// TestCheckedMatchesUnchecked verifies the sanitizer is a pure observer:
// enabling it must not change a run's outcome. Energy is compared with a
// relative tolerance because disk sweeps accrue energy at finer time
// granularity, which reorders the floating-point summation by an ulp.
func TestCheckedMatchesUnchecked(t *testing.T) {
	cfg := smallConfig(SchemeRoLoP)
	recs := writeHeavy(t, cfg, 80, sim.Minute, 0.9)
	base, err := Run(cfg, recs)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	cfg.Check = true
	cfg.CheckSweepEvery = 256
	checked, err := Run(cfg, recs)
	if err != nil {
		t.Fatalf("Run with sanitizer: %v", err)
	}
	if base.Requests != checked.Requests || base.Rotations != checked.Rotations ||
		base.SpinCycles != checked.SpinCycles || base.DrainedAt != checked.DrainedAt {
		t.Errorf("sanitizer perturbed the run:\nunchecked: reqs=%d rot=%d spins=%d drained=%v\nchecked:   reqs=%d rot=%d spins=%d drained=%v",
			base.Requests, base.Rotations, base.SpinCycles, base.DrainedAt,
			checked.Requests, checked.Rotations, checked.SpinCycles, checked.DrainedAt)
	}
	if diff := checked.EnergyJ - base.EnergyJ; diff > 1e-9*base.EnergyJ || diff < -1e-9*base.EnergyJ {
		t.Errorf("sanitizer perturbed energy: %g J vs %g J", checked.EnergyJ, base.EnergyJ)
	}
}
