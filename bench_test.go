package rolo_test

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation. Each benchmark regenerates its experiment via the registry
// in internal/experiments at a reduced scale (see the experiments package
// comment for why scaling preserves the paper's comparisons) and logs the
// regenerated rows, so
//
//	go test -bench=. -benchmem
//
// reproduces the entire evaluation. BENCH_SCALE and BENCH_PAIRS env vars
// override the defaults (0.02 / 10 pairs) for full-fidelity runs.

import (
	"bytes"
	"os"
	"strconv"
	"testing"

	"github.com/rolo-storage/rolo"
	"github.com/rolo-storage/rolo/internal/experiments"
)

func benchOptions() experiments.Options {
	o := experiments.Options{Scale: 0.02, Pairs: 10}
	if v := os.Getenv("BENCH_SCALE"); v != "" {
		if f, err := strconv.ParseFloat(v, 64); err == nil {
			o.Scale = f
		}
	}
	if v := os.Getenv("BENCH_PAIRS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil {
			o.Pairs = n
		}
	}
	return o
}

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := experiments.Lookup(id)
	if err != nil {
		b.Fatal(err)
	}
	o := benchOptions()
	var out bytes.Buffer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out.Reset()
		if err := e.Run(o, &out); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.Logf("\n%s", out.String())
}

// BenchmarkFig2 regenerates Figure 2: the Section II motivation study of
// centralized logging (destaging interval and energy ratios vs logger
// capacity and I/O intensity).
func BenchmarkFig2(b *testing.B) { benchExperiment(b, "fig2") }

// BenchmarkFig3 regenerates Figure 3: IDLE vs ACTIVE/STANDBY time
// fractions for primaries and the log disk.
func BenchmarkFig3(b *testing.B) { benchExperiment(b, "fig3") }

// BenchmarkFig9 regenerates Figure 9: MTTDL vs MTTR for the four schemes.
func BenchmarkFig9(b *testing.B) { benchExperiment(b, "fig9") }

// BenchmarkEquations cross-checks Equations (1)-(5) against the exact
// CTMC solutions.
func BenchmarkEquations(b *testing.B) { benchExperiment(b, "eqs") }

// BenchmarkFig10 regenerates Figure 10: energy and response time of all
// five schemes under src2_2 and proj_0.
func BenchmarkFig10(b *testing.B) { benchExperiment(b, "fig10") }

// BenchmarkTable1 regenerates Table I: disk spin up/down counts.
func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }

// BenchmarkTable4 regenerates Table IV: the comparison summary.
func BenchmarkTable4(b *testing.B) { benchExperiment(b, "table4") }

// BenchmarkTable5 regenerates Table V: RoLo-E read behaviour.
func BenchmarkTable5(b *testing.B) { benchExperiment(b, "table5") }

// BenchmarkFig11 regenerates Figure 11: energy saved vs array size.
func BenchmarkFig11(b *testing.B) { benchExperiment(b, "fig11") }

// BenchmarkFig12 regenerates Figure 12: response time vs array size.
func BenchmarkFig12(b *testing.B) { benchExperiment(b, "fig12") }

// BenchmarkFig13 regenerates Figure 13: energy saved over GRAID vs free
// storage space.
func BenchmarkFig13(b *testing.B) { benchExperiment(b, "fig13") }

// BenchmarkFig14 regenerates Figure 14: the non-write-intensive traces.
func BenchmarkFig14(b *testing.B) { benchExperiment(b, "fig14") }

// BenchmarkStripeSensitivity regenerates the Section V-C stripe-unit
// sensitivity study.
func BenchmarkStripeSensitivity(b *testing.B) { benchExperiment(b, "stripe") }

// BenchmarkDiskSizeSensitivity regenerates the Section V-C disk-size
// sensitivity study.
func BenchmarkDiskSizeSensitivity(b *testing.B) { benchExperiment(b, "disksize") }

// BenchmarkAblationMultiLogger measures the Section III-D scalability
// lever: RoLo-P with one vs two on-duty loggers under the bursty src2_2
// profile. More loggers trade standby energy for log bandwidth.
func BenchmarkAblationMultiLogger(b *testing.B) {
	o := benchOptions()
	for _, loggers := range []int{1, 2} {
		loggers := loggers
		b.Run(strconv.Itoa(loggers), func(b *testing.B) {
			cfg := rolo.DefaultConfig(rolo.SchemeRoLoP)
			cfg.Pairs = o.Pairs
			cfg.Disk.CapacityBytes = int64(18.4 * o.Scale * float64(int64(1)<<30))
			cfg.Disk.CapacityBytes -= cfg.Disk.CapacityBytes % (1 << 20)
			cfg.FreeBytesPerDisk = int64(8 * o.Scale * float64(int64(1)<<30))
			cfg.FreeBytesPerDisk -= cfg.FreeBytesPerDisk % (1 << 20)
			cfg.RoLo.OnDutyLoggers = loggers
			recs, err := rolo.GenerateProfile("src2_2", cfg, o.Scale)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			var rep rolo.Report
			for i := 0; i < b.N; i++ {
				rep, err = rolo.Run(cfg, recs)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(rep.EnergyJ, "energyJ")
			b.ReportMetric(rep.MeanResponseMs, "mean-ms")
			b.ReportMetric(float64(rep.Rotations), "rotations")
		})
	}
}

// BenchmarkAblationBackgroundGuard measures the idle-slot detector: with
// the guard disabled, destaging consumes microscopic gaps inside bursts
// and log appends lose sequentiality.
func BenchmarkAblationBackgroundGuard(b *testing.B) {
	o := benchOptions()
	for _, guard := range []bool{true, false} {
		guard := guard
		name := "guarded"
		if !guard {
			name = "unguarded"
		}
		b.Run(name, func(b *testing.B) {
			cfg := rolo.DefaultConfig(rolo.SchemeRoLoP)
			cfg.Pairs = o.Pairs
			cfg.Disk.CapacityBytes = int64(18.4 * o.Scale * float64(int64(1)<<30))
			cfg.Disk.CapacityBytes -= cfg.Disk.CapacityBytes % (1 << 20)
			cfg.FreeBytesPerDisk = int64(8 * o.Scale * float64(int64(1)<<30))
			cfg.FreeBytesPerDisk -= cfg.FreeBytesPerDisk % (1 << 20)
			if !guard {
				cfg.Disk.BackgroundGuard = 0
			}
			recs, err := rolo.GenerateProfile("src2_2", cfg, o.Scale)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			var rep rolo.Report
			for i := 0; i < b.N; i++ {
				rep, err = rolo.Run(cfg, recs)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(rep.MeanResponseMs, "mean-ms")
			b.ReportMetric(rep.P99ResponseMs, "p99-ms")
		})
	}
}

// BenchmarkParityExtension regenerates the future-work study: RoLo's
// rotated logging on a RAID5 array vs the read-modify-write baseline.
func BenchmarkParityExtension(b *testing.B) { benchExperiment(b, "parity") }

// BenchmarkRecovery regenerates the Section III-C/D failure study.
func BenchmarkRecovery(b *testing.B) { benchExperiment(b, "recovery") }
